#include "expr/intern.h"

#include <atomic>
#include <functional>

namespace gencompact {

namespace {

std::atomic<bool> g_interning_enabled{true};
std::atomic<uint64_t> g_next_condition_id{1};

// splitmix64 finalizer: full-avalanche mixing of one 64-bit word.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Order-sensitive combine (child order matters: source grammars may be
// order sensitive, exactly as StructurallyEquals treats it).
uint64_t Combine(uint64_t h, uint64_t v) { return Mix(h * 0x100000001b3ull ^ v); }

// Shallow structural probe: children are interned (or at worst structurally
// comparable), so candidate equality never re-walks whole subtrees when the
// pool is in steady state.
bool SameStructure(const ConditionNode& node, ConditionNode::Kind kind,
                   const AtomicCondition& atom,
                   const std::vector<ConditionPtr>& children) {
  if (node.kind() != kind) return false;
  if (kind == ConditionNode::Kind::kAtom) return node.atom() == atom;
  if (node.children().size() != children.size()) return false;
  for (size_t i = 0; i < children.size(); ++i) {
    if (node.children()[i] != children[i] &&
        !node.children()[i]->StructurallyEquals(*children[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint64_t ConditionInterner::Fingerprint(
    ConditionNode::Kind kind, const AtomicCondition& atom,
    const std::vector<ConditionPtr>& children) {
  switch (kind) {
    case ConditionNode::Kind::kTrue:
      return Mix(0x7472756521ull);  // any fixed tag
    case ConditionNode::Kind::kAtom: {
      uint64_t h = Mix(0x61746f6d21ull);
      h = Combine(h, std::hash<std::string>{}(atom.attribute));
      h = Combine(h, static_cast<uint64_t>(atom.op));
      // Value::Hash is consistent with Value::operator== (numerically equal
      // kInt/kDouble hash alike), matching StructurallyEquals' atom equality.
      h = Combine(h, atom.constant.Hash());
      return h;
    }
    case ConditionNode::Kind::kAnd:
    case ConditionNode::Kind::kOr: {
      uint64_t h =
          Mix(kind == ConditionNode::Kind::kAnd ? 0x616e6421ull : 0x6f7221ull);
      for (const ConditionPtr& child : children) {
        h = Combine(h, child->fingerprint());
      }
      return h;
    }
  }
  return 0;
}

ConditionInterner& ConditionInterner::Global() {
  static ConditionInterner* const pool = new ConditionInterner();
  return *pool;
}

bool ConditionInterner::enabled() {
  return g_interning_enabled.load(std::memory_order_relaxed);
}

void ConditionInterner::set_enabled(bool on) {
  g_interning_enabled.store(on, std::memory_order_relaxed);
}

ConditionPtr ConditionInterner::Intern(ConditionNode::Kind kind,
                                       AtomicCondition atom,
                                       std::vector<ConditionPtr> children) {
  const uint64_t fingerprint = Fingerprint(kind, atom, children);
  if (!enabled()) {
    // Ablation mode: fresh node, fresh id, not pooled (plain deleter).
    return ConditionPtr(new ConditionNode(
        kind, std::move(atom), std::move(children), fingerprint,
        g_next_condition_id.fetch_add(1, std::memory_order_relaxed)));
  }
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  std::vector<Entry>& bucket = shard.buckets[fingerprint];
  for (const Entry& entry : bucket) {
    // lock() fails for a node whose last reference is mid-destruction; its
    // deleter will unlink the entry once it acquires this shard's lock.
    ConditionPtr existing = entry.weak.lock();
    if (existing != nullptr && SameStructure(*existing, kind, atom, children)) {
      ++shard.hits;
      return existing;
    }
  }
  ++shard.misses;
  const ConditionNode* node = new ConditionNode(
      kind, std::move(atom), std::move(children), fingerprint,
      g_next_condition_id.fetch_add(1, std::memory_order_relaxed));
  ConditionPtr interned(node, Unlink{});
  bucket.push_back(Entry{node, interned});
  return interned;
}

void ConditionInterner::Unlink::operator()(const ConditionNode* node) const {
  Global().Remove(node);
  // Deleting outside the shard lock: the children's deleters re-enter the
  // pool (possibly the same shard).
  delete node;
}

void ConditionInterner::Remove(const ConditionNode* node) {
  Shard& shard = ShardFor(node->fingerprint());
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.buckets.find(node->fingerprint());
  if (it == shard.buckets.end()) return;
  std::vector<Entry>& bucket = it->second;
  for (size_t i = 0; i < bucket.size(); ++i) {
    // Match on the raw pointer: a structurally equal replacement node may
    // already sit in this bucket if it was interned while this node's
    // destruction was in flight.
    if (bucket[i].node == node) {
      bucket[i] = std::move(bucket.back());
      bucket.pop_back();
      break;
    }
  }
  if (bucket.empty()) shard.buckets.erase(it);
}

ConditionInterner::Stats ConditionInterner::stats() const {
  Stats stats;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [fp, bucket] : shard.buckets) {
      stats.live_nodes += bucket.size();
    }
    stats.hits += shard.hits;
    stats.misses += shard.misses;
  }
  return stats;
}

}  // namespace gencompact
