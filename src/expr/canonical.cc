#include "expr/canonical.h"

namespace gencompact {

namespace {

// Appends `child` (already canonical) to `out`, splicing in its children if
// it is a connector of the same kind as `kind`.
void AppendFlattened(ConditionNode::Kind kind, const ConditionPtr& child,
                     std::vector<ConditionPtr>* out) {
  if (child->kind() == kind) {
    for (const ConditionPtr& grandchild : child->children()) {
      out->push_back(grandchild);
    }
  } else {
    out->push_back(child);
  }
}

}  // namespace

ConditionPtr Canonicalize(const ConditionPtr& cond) {
  switch (cond->kind()) {
    case ConditionNode::Kind::kTrue:
    case ConditionNode::Kind::kAtom:
      return cond;
    case ConditionNode::Kind::kAnd: {
      std::vector<ConditionPtr> children;
      bool all_true = true;
      for (const ConditionPtr& child : cond->children()) {
        const ConditionPtr canonical_child = Canonicalize(child);
        if (canonical_child->is_true()) continue;  // true absorbed in ∧
        all_true = false;
        AppendFlattened(ConditionNode::Kind::kAnd, canonical_child, &children);
      }
      if (all_true) return ConditionNode::True();
      return ConditionNode::And(std::move(children));
    }
    case ConditionNode::Kind::kOr: {
      std::vector<ConditionPtr> children;
      for (const ConditionPtr& child : cond->children()) {
        const ConditionPtr canonical_child = Canonicalize(child);
        if (canonical_child->is_true()) return ConditionNode::True();
        AppendFlattened(ConditionNode::Kind::kOr, canonical_child, &children);
      }
      return ConditionNode::Or(std::move(children));
    }
  }
  return cond;
}

bool IsCanonical(const ConditionNode& cond) {
  if (!cond.is_connector()) return true;
  for (const ConditionPtr& child : cond.children()) {
    if (child->kind() == cond.kind()) return false;
    if (child->is_true()) return false;
    if (!IsCanonical(*child)) return false;
  }
  return true;
}

}  // namespace gencompact
