#ifndef GENCOMPACT_COMMON_BACKOFF_H_
#define GENCOMPACT_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/rng.h"

namespace gencompact {

/// Bounds for one retry schedule.
struct BackoffPolicy {
  std::chrono::microseconds base{1000};  ///< first delay lower bound
  std::chrono::microseconds cap{64000};  ///< every delay is clamped here
};

/// Capped exponential backoff with *decorrelated jitter* (the AWS
/// architecture-blog variant): each delay is drawn uniformly from
/// [base, 3·previous] and clamped to cap. Compared to plain exponential
/// backoff, concurrent clients that failed together de-synchronize after one
/// round instead of retrying in lockstep and re-overloading the source.
///
/// Fully deterministic from the seed — the test suite replays retry
/// schedules exactly, no wall-clock involved (delays are *returned*, the
/// caller decides how to sleep via Clock).
class DecorrelatedJitterBackoff {
 public:
  DecorrelatedJitterBackoff(BackoffPolicy policy, uint64_t seed)
      : policy_(policy), seed_(seed), rng_(seed), prev_(policy.base) {}

  /// The next delay in the schedule; advances the internal state.
  std::chrono::microseconds NextDelay() {
    const int64_t base = std::max<int64_t>(policy_.base.count(), 1);
    const int64_t hi = std::max<int64_t>(base, 3 * prev_.count());
    const int64_t drawn =
        base + static_cast<int64_t>(rng_.NextBelow(
                   static_cast<uint64_t>(hi - base + 1)));
    prev_ = std::chrono::microseconds(
        std::min<int64_t>(drawn, policy_.cap.count()));
    return prev_;
  }

  /// Restarts the schedule from the beginning (same seed, same delays).
  void Reset() {
    rng_ = Rng(seed_);
    prev_ = policy_.base;
  }

 private:
  BackoffPolicy policy_;
  uint64_t seed_;
  Rng rng_;
  std::chrono::microseconds prev_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_COMMON_BACKOFF_H_
