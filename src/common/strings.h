#ifndef GENCOMPACT_COMMON_STRINGS_H_
#define GENCOMPACT_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace gencompact {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// Case-sensitive substring test (the `contains` predicate of the paper's
/// bookstore example).
bool Contains(std::string_view haystack, std::string_view needle);

bool StartsWith(std::string_view text, std::string_view prefix);

/// Lowercases ASCII letters.
std::string ToLower(std::string_view text);

}  // namespace gencompact

#endif  // GENCOMPACT_COMMON_STRINGS_H_
