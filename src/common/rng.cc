#include "common/rng.h"

namespace gencompact {

uint64_t Rng::Next() {
  // splitmix64
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  while (true) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace gencompact
