#include "common/clock.h"

#include <thread>

namespace gencompact {
namespace {

class RealClock : public Clock {
 public:
  std::chrono::steady_clock::time_point Now() override {
    return std::chrono::steady_clock::now();
  }
  void SleepFor(std::chrono::microseconds duration) override {
    if (duration.count() > 0) std::this_thread::sleep_for(duration);
  }
  bool AwaitFor(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                std::chrono::microseconds timeout,
                const std::function<bool()>& pred) override {
    return cv.wait_for(lock, timeout, pred);
  }
};

}  // namespace

Clock* Clock::Real() {
  static RealClock* clock = new RealClock();  // leaky: usable during teardown
  return clock;
}

}  // namespace gencompact
