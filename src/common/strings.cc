#include "common/strings.h"

#include <cctype>

namespace gencompact {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace gencompact
