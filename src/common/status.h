#ifndef GENCOMPACT_COMMON_STATUS_H_
#define GENCOMPACT_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace gencompact {

/// Error categories used across the library. Modeled after the
/// Status idiom used by production storage engines: no exceptions cross
/// public API boundaries; every fallible call returns a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (bad condition text, bad SSDL, ...)
  kNotFound,          ///< unknown attribute, source, nonterminal, ...
  kUnsupported,       ///< the source cannot evaluate the query (capability)
  kNoFeasiblePlan,    ///< the planner proved no feasible plan exists
  kResourceExhausted, ///< a search budget (rewrites, MCSC size) was exceeded
  kUnavailable,       ///< transient source failure (network, outage); retryable
  kDeadlineExceeded,  ///< a round trip or sub-query blew its deadline
  kInternal,          ///< invariant violation; indicates a library bug
};

/// True for the codes a retry can plausibly fix: the source did not answer
/// (kUnavailable) or did not answer in time (kDeadlineExceeded). kUnsupported
/// is a *capability* verdict — the source is healthy and will keep refusing —
/// so it is never retryable.
inline bool IsRetryable(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlineExceeded;
}

/// Human-readable name of a StatusCode, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status NoFeasiblePlan(std::string msg) {
    return Status(StatusCode::kNoFeasiblePlan, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace gencompact

/// Propagates a non-OK Status out of the current function.
#define GC_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::gencompact::Status _gc_status = (expr);     \
    if (!_gc_status.ok()) return _gc_status;      \
  } while (false)

#endif  // GENCOMPACT_COMMON_STATUS_H_
