#ifndef GENCOMPACT_COMMON_RNG_H_
#define GENCOMPACT_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gencompact {

/// Deterministic 64-bit PRNG (splitmix64 + xorshift mix). All workload
/// generators take an Rng so experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x853c49e6748fea9bull) {}

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Requires bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial.
  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  /// Picks a uniformly random element index for a container of size n.
  size_t NextIndex(size_t n) { return static_cast<size_t>(NextBelow(n)); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      const size_t j = NextIndex(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_COMMON_RNG_H_
