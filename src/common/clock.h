#ifndef GENCOMPACT_COMMON_CLOCK_H_
#define GENCOMPACT_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>

namespace gencompact {

/// Injectable time source for every wall-clock decision the fault-tolerance
/// layer makes (backoff sleeps, sub-query deadlines, circuit-breaker open
/// windows). Production code uses Real(); tests inject a FakeClock so retry
/// schedules and breaker transitions are instantaneous and deterministic —
/// no sleeps, no flaky timing assertions.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic now. Only differences are meaningful.
  virtual std::chrono::steady_clock::time_point Now() = 0;

  /// Blocks (or simulates blocking) for `duration`.
  virtual void SleepFor(std::chrono::microseconds duration) = 0;

  /// Waits on `cv` (with `lock` held) until `pred()` holds or `timeout` of
  /// this clock's time elapses; returns the final pred(). The timed wait the
  /// hedging executor arms against an in-flight fetch: the real clock maps
  /// it to condition_variable::wait_for, while FakeClock checks the
  /// predicate, advances itself by `timeout`, and re-checks — so "the hedge
  /// fires exactly at the digest's p99" is a deterministic assertion, not a
  /// timing race.
  virtual bool AwaitFor(std::condition_variable& cv,
                        std::unique_lock<std::mutex>& lock,
                        std::chrono::microseconds timeout,
                        const std::function<bool()>& pred) = 0;

  /// The process-wide steady_clock-backed instance.
  static Clock* Real();
};

/// A manually advanced clock. SleepFor() advances time instead of blocking,
/// so code under test that "waits" simply moves the clock forward; Advance()
/// models time passing between calls (e.g. a breaker's open window expiring
/// while no queries arrive). Thread-safe: concurrent executor tasks may
/// sleep on it simultaneously.
class FakeClock : public Clock {
 public:
  explicit FakeClock(
      std::chrono::steady_clock::time_point epoch = {})
      : now_us_(std::chrono::duration_cast<std::chrono::microseconds>(
                    epoch.time_since_epoch())
                    .count()) {}

  std::chrono::steady_clock::time_point Now() override {
    return std::chrono::steady_clock::time_point(
        std::chrono::microseconds(now_us_.load(std::memory_order_relaxed)));
  }

  void SleepFor(std::chrono::microseconds duration) override {
    Advance(duration);
  }

  bool AwaitFor(std::condition_variable& /*cv*/,
                std::unique_lock<std::mutex>& /*lock*/,
                std::chrono::microseconds timeout,
                const std::function<bool()>& pred) override {
    // Never blocks: either the condition already holds, or the full timeout
    // "passes" instantly and the caller proceeds down its timeout path.
    if (pred()) return true;
    Advance(timeout);
    return pred();
  }

  void Advance(std::chrono::microseconds duration) {
    now_us_.fetch_add(duration.count(), std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_us_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_COMMON_CLOCK_H_
