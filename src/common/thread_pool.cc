#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace gencompact {

/// Shared state of one ParallelFor call. Iterations are claimed from an
/// atomic counter so the caller and any number of helper tasks can pull work
/// without coordination; completion is tracked per-iteration so the waiter
/// wakes only once every claimed body has returned.
struct ThreadPool::ForLoop {
  size_t n = 0;
  const std::function<void(size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};

  std::mutex mu;
  std::condition_variable done_cv;
  size_t done = 0;  // guarded by mu
  std::exception_ptr error;  // guarded by mu; first failure wins
};

ThreadPool::ThreadPool(size_t num_threads) {
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // With zero workers nothing drains the queue; run leftovers inline so
  // Submit futures are always satisfied.
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    task();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  if (workers_.empty()) {
    task();  // inline degeneration, see header
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunLoopIterations(const std::shared_ptr<ForLoop>& loop) {
  size_t completed_here = 0;
  for (;;) {
    const size_t i = loop->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= loop->n) break;
    if (!loop->failed.load(std::memory_order_relaxed)) {
      try {
        (*loop->body)(i);
      } catch (...) {
        loop->failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(loop->mu);
        if (!loop->error) loop->error = std::current_exception();
      }
    }
    ++completed_here;
  }
  if (completed_here == 0) return;
  std::lock_guard<std::mutex> lock(loop->mu);
  loop->done += completed_here;
  if (loop->done == loop->n) loop->done_cv.notify_all();
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || workers_.empty()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  auto loop = std::make_shared<ForLoop>();
  loop->n = n;
  loop->body = &body;
  // One helper per worker (capped by n-1: the caller runs iterations too).
  const size_t helpers = std::min(workers_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Enqueue([loop]() { RunLoopIterations(loop); });
  }
  RunLoopIterations(loop);
  std::unique_lock<std::mutex> lock(loop->mu);
  loop->done_cv.wait(lock, [&loop]() { return loop->done == loop->n; });
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace gencompact
