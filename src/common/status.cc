#include "common/status.h"

namespace gencompact {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kNoFeasiblePlan:
      return "NoFeasiblePlan";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace gencompact
