#include "common/value.h"

#include <cmath>
#include <functional>
#include <sstream>

namespace gencompact {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

ValueType Value::type() const {
  switch (data_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kBool;
    case 2:
      return ValueType::kInt;
    case 3:
      return ValueType::kDouble;
    case 4:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

double Value::AsDouble() const {
  if (type() == ValueType::kInt) return static_cast<double>(int_value());
  return double_value();
}

namespace {

// Rank used to order values of incomparable types; numerics share a rank.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  const int lr = TypeRank(type());
  const int rr = TypeRank(other.type());
  if (lr != rr) return lr < rr ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      const bool a = bool_value();
      const bool b = other.bool_value();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Compare exactly when both are ints; otherwise via double.
      if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
        const int64_t a = int_value();
        const int64_t b = other.int_value();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      const double a = AsDouble();
      const double b = other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kString: {
      const int c = string_value().compare(other.string_value());
      return c == 0 ? 0 : (c < 0 ? -1 : 1);
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueType::kBool:
      return bool_value() ? 0x1234567u : 0x89abcdefu;
    case ValueType::kInt:
      // Hash ints via their double image only when the double image is exact,
      // so that Int(2) and Double(2.0) (which compare equal) hash alike.
      return std::hash<double>()(static_cast<double>(int_value()));
    case ValueType::kDouble:
      return std::hash<double>()(double_value());
    case ValueType::kString:
      return std::hash<std::string>()(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return bool_value() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << double_value();
      return os.str();
    }
    case ValueType::kString: {
      // Escape so that ToString is injective on strings; condition
      // serializations double as structural keys.
      std::string out = "\"";
      for (char c : string_value()) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }
  }
  return "?";
}

}  // namespace gencompact
