#ifndef GENCOMPACT_COMMON_RESULT_H_
#define GENCOMPACT_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace gencompact {

/// A value-or-Status holder, in the spirit of arrow::Result / StatusOr.
///
/// A Result<T> is either OK and holds a T, or holds a non-OK Status. The
/// accessors assert on misuse in debug builds; callers are expected to test
/// ok() first (or use GC_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace gencompact

/// Evaluates `expr` (a Result<T>), propagating its Status on error and
/// otherwise binding the value to `lhs`.
#define GC_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto GC_CONCAT_(_gc_result_, __LINE__) = (expr);     \
  if (!GC_CONCAT_(_gc_result_, __LINE__).ok())         \
    return GC_CONCAT_(_gc_result_, __LINE__).status(); \
  lhs = std::move(GC_CONCAT_(_gc_result_, __LINE__)).value()

#define GC_CONCAT_(a, b) GC_CONCAT_IMPL_(a, b)
#define GC_CONCAT_IMPL_(a, b) a##b

#endif  // GENCOMPACT_COMMON_RESULT_H_
