#ifndef GENCOMPACT_COMMON_THREAD_POOL_H_
#define GENCOMPACT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gencompact {

/// A fixed-size thread pool for the mediator's parallel plan execution.
///
/// Two entry points:
///   - Submit(f): enqueue a task, get a std::future for its result (or its
///     exception).
///   - ParallelFor(n, body): run body(0..n-1) cooperatively and block until
///     all iterations finish.
///
/// ParallelFor is *caller-participating*: the calling thread claims and runs
/// iterations alongside the workers instead of merely waiting. This makes
/// nested ParallelFor calls (a parallel Union whose children contain parallel
/// Intersections) deadlock-free on a fixed pool — in the worst case every
/// worker is busy and the caller simply runs all of its own iterations
/// inline. A pool constructed with zero threads degenerates to fully inline
/// execution, which keeps "no pool" and "pool of 0" behaviourally identical.
///
/// The destructor stops intake, drains every task already queued, and joins
/// the workers, so futures obtained from Submit never dangle.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `f` and returns a future for its result. Exceptions thrown by
  /// `f` are captured and rethrown from future::get(). With zero workers the
  /// task runs inline before Submit returns.
  template <typename F>
  auto Submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Fire-and-forget enqueue for callers that track completion themselves
  /// (the async scheduler's scan offload posts its continuation back to the
  /// event loop) — skips the packaged_task/future machinery of Submit.
  void Post(std::function<void()> task) { Enqueue(std::move(task)); }

  /// Runs body(i) for every i in [0, n), using the workers plus the calling
  /// thread, and returns when all n iterations completed. If any iteration
  /// throws, the first exception is rethrown here and the remaining
  /// unclaimed iterations are skipped (claimed ones still finish).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

 private:
  struct ForLoop;  // shared state of one ParallelFor

  void Enqueue(std::function<void()> task);
  void WorkerLoop();
  static void RunLoopIterations(const std::shared_ptr<ForLoop>& loop);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace gencompact

#endif  // GENCOMPACT_COMMON_THREAD_POOL_H_
