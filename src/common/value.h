#ifndef GENCOMPACT_COMMON_VALUE_H_
#define GENCOMPACT_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace gencompact {

/// Runtime type of a Value / declared type of a schema attribute.
enum class ValueType {
  kNull = 0,
  kBool,
  kInt,     ///< 64-bit signed integer
  kDouble,  ///< IEEE double
  kString,  ///< UTF-8 byte string
};

const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar, the unit of data flowing through the system.
///
/// Values are ordered within numeric types (kInt and kDouble compare
/// numerically against each other) and within kString / kBool. Comparing
/// incomparable types (e.g. string vs int) is defined but arbitrary
/// (type-tag order) so Values can live in ordered containers.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Data(v)); }
  static Value Int(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }

  ValueType type() const;

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const { return std::get<std::string>(data_); }

  /// Numeric view: kInt/kDouble as double. Requires is_numeric().
  double AsDouble() const;

  /// Three-way comparison: negative, zero, positive. Numeric types compare
  /// numerically across kInt/kDouble; otherwise types compare by tag first.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable hash consistent with operator== (numerically equal kInt/kDouble
  /// hash alike).
  size_t Hash() const;

  /// Renders the value for display / serialization. Strings are quoted.
  std::string ToString() const;

 private:
  using Data = std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace gencompact

#endif  // GENCOMPACT_COMMON_VALUE_H_
