#ifndef GENCOMPACT_WORKLOAD_RANDOM_CONDITION_H_
#define GENCOMPACT_WORKLOAD_RANDOM_CONDITION_H_

#include "common/rng.h"
#include "workload/datasets.h"

namespace gencompact {

/// Shape parameters for random target-query conditions.
struct RandomConditionOptions {
  size_t num_atoms = 4;       ///< total atomic conditions in the tree
  double or_probability = 0.45;  ///< a connector node is ∨ with this prob.
  size_t max_fanout = 4;      ///< max children per connector
  /// Probability that a string atom uses `contains` instead of `=`.
  double contains_probability = 0.2;
  /// Probability that a numeric atom is a range predicate instead of `=`.
  double range_probability = 0.7;
};

/// Generates a random condition tree with exactly `options.num_atoms` atoms
/// whose constants are drawn from the data's sampled domains, so estimated
/// and true selectivities are meaningful. The tree alternates connector
/// kinds along each path (canonical shape) with random fanout.
ConditionPtr RandomCondition(const std::vector<AttributeDomain>& domains,
                             const RandomConditionOptions& options, Rng* rng);

}  // namespace gencompact

#endif  // GENCOMPACT_WORKLOAD_RANDOM_CONDITION_H_
