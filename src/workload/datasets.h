#ifndef GENCOMPACT_WORKLOAD_DATASETS_H_
#define GENCOMPACT_WORKLOAD_DATASETS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "expr/condition.h"
#include "ssdl/description.h"
#include "storage/table.h"

namespace gencompact {

/// A synthetic source reproducing one of the paper's motivating scenarios:
/// data, capability description, and the example target query.
struct Dataset {
  std::unique_ptr<Table> table;
  SourceDescription description;
  ConditionPtr example_condition;
  std::vector<std::string> example_attrs;
};

/// Example 1.1 (BarnesAndNoble): books(author, title, subject, price, year).
/// The query interface accepts one author, one title keyword and one
/// subject at a time (conjunctively; no two authors at once) and does NOT
/// allow downloading the catalog. Data is tuned to the paper's shape: over
/// 2,000 titles contain "dreams", while Freud/Jung books about dreams
/// number under 20 — so the CNF (Garlic) plan ships thousands of rows and
/// the two-query GenCompact plan ships fewer than 20.
///
/// example_condition: (author = "Sigmund Freud" or author = "Carl Jung")
///                    and title contains "dreams".
Dataset MakeBookstore(size_t num_books, uint64_t seed);

/// Example 1.2 (car shopping guide): cars(make, model, style, size, color,
/// price, year). The web form takes single values for style, make and
/// price (upper bound) plus a LIST of values for size; no download.
///
/// example_condition: style = "sedan" and (size = "compact" or
///   size = "midsize") and ((make = "Toyota" and price <= 20000) or
///   (make = "BMW" and price <= 40000)).
Dataset MakeCarSource(size_t num_cars, uint64_t seed);

/// Sampled constants of one attribute, for generating conditions whose
/// constants hit the data.
struct AttributeDomain {
  std::string name;
  ValueType type = ValueType::kString;
  std::vector<Value> sample_values;
};

/// Extracts up to `max_samples` distinct sample values per attribute.
std::vector<AttributeDomain> ExtractDomains(const Table& table,
                                            size_t max_samples, Rng* rng);

/// A generic random table: string attributes draw zipf-ranked values from a
/// small pool, numeric attributes draw uniformly from [0, value_range).
std::unique_ptr<Table> MakeRandomTable(const std::string& name,
                                       const Schema& schema, size_t rows,
                                       size_t string_pool, int64_t value_range,
                                       Rng* rng);

}  // namespace gencompact

#endif  // GENCOMPACT_WORKLOAD_DATASETS_H_
