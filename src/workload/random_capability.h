#ifndef GENCOMPACT_WORKLOAD_RANDOM_CAPABILITY_H_
#define GENCOMPACT_WORKLOAD_RANDOM_CAPABILITY_H_

#include "common/rng.h"
#include "ssdl/description.h"

namespace gencompact {

/// Parameters for random capability mixes, modeled on the restriction
/// classes of Section 4.
struct RandomCapabilityOptions {
  size_t num_conjunctive_forms = 3;
  size_t max_slots_per_form = 3;
  double optional_slot_probability = 0.4;
  double value_list_probability = 0.2;
  /// Probability that a form exports all attributes (else a random superset
  /// of its slot attributes).
  double export_all_probability = 0.7;
  /// Probability the source also accepts arbitrary single-atom queries.
  double atomic_forms_probability = 0.5;
  /// Probability the source allows a full download (`true` queries).
  double download_probability = 0.25;
  double k1 = 10.0;
  double k2 = 0.5;
};

/// Generates a random SSDL description over `schema` using
/// CapabilityBuilder shapes. Deterministic given the Rng state.
SourceDescription RandomCapability(const std::string& source_name,
                                   const Schema& schema,
                                   const RandomCapabilityOptions& options,
                                   Rng* rng);

}  // namespace gencompact

#endif  // GENCOMPACT_WORKLOAD_RANDOM_CAPABILITY_H_
