#ifndef GENCOMPACT_WORKLOAD_ZIPF_H_
#define GENCOMPACT_WORKLOAD_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace gencompact {

/// Zipf(s) sampler over ranks 0..n-1 (rank 0 most frequent), via inverse
/// CDF on a precomputed table. Used by the dataset generators so attribute
/// value frequencies are skewed like real catalog data (a handful of
/// popular authors, makes, colors).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// Samples a rank in [0, n).
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_WORKLOAD_ZIPF_H_
