#include "workload/datasets.h"

#include <cassert>

#include "expr/condition_parser.h"
#include "ssdl/capability_builder.h"
#include "workload/zipf.h"

namespace gencompact {

namespace {

// Small word pools for synthetic titles.
const char* const kTitleWords[] = {
    "history",  "night",   "garden", "science", "love",    "war",
    "memory",   "ocean",   "city",   "shadow",  "journey", "silence",
    "stars",    "kingdom", "secret", "winter",  "summer",  "river",
    "mountain", "letters", "music",  "stone",   "fire",    "glass"};

const char* const kSubjects[] = {"psychology", "fiction",  "history",
                                 "science",    "travel",   "art",
                                 "philosophy", "medicine", "poetry"};

std::string SyntheticAuthor(size_t rank) {
  static const char* const kFirst[] = {"John",  "Mary",  "Anna", "Peter",
                                       "Laura", "Henry", "Clara", "Paul"};
  static const char* const kLast[] = {"Smith",  "Miller", "Garcia", "Chen",
                                      "Novak",  "Rossi",  "Dubois", "Mori"};
  return std::string(kFirst[rank % 8]) + " " + kLast[(rank / 8) % 8] + " " +
         std::to_string(rank);
}

Status AppendBook(Table* table, const std::string& author,
                  const std::string& title, const std::string& subject,
                  double price, int64_t year) {
  return table->AppendValues({Value::String(author), Value::String(title),
                              Value::String(subject), Value::Double(price),
                              Value::Int(year)});
}

}  // namespace

Dataset MakeBookstore(size_t num_books, uint64_t seed) {
  Rng rng(seed);
  Schema schema({{"author", ValueType::kString},
                 {"title", ValueType::kString},
                 {"subject", ValueType::kString},
                 {"price", ValueType::kDouble},
                 {"year", ValueType::kInt}});

  auto table = std::make_unique<Table>("books", schema);

  // ~5% of titles mention "dreams" so the CNF plan (ship only the
  // title-contains clause) transfers thousands of rows at 50k books.
  const ZipfSampler author_zipf(2000, 1.1);
  const std::vector<std::string> all_attrs = {"author", "title", "subject",
                                              "price", "year"};
  const auto random_title = [&](bool force_dreams) {
    std::string title(kTitleWords[rng.NextIndex(std::size(kTitleWords))]);
    title += " of ";
    title += kTitleWords[rng.NextIndex(std::size(kTitleWords))];
    if (force_dreams || rng.NextBool(0.05)) {
      title += " dreams";
    }
    return title;
  };

  // The paper's protagonists: a handful of Freud/Jung books, few about
  // dreams (the two-query plan retrieves fewer than 20 rows).
  for (int i = 0; i < 10; ++i) {
    const Status status = AppendBook(
        table.get(), "Sigmund Freud", random_title(/*force_dreams=*/i < 8),
        "psychology", 10.0 + rng.NextDouble() * 30, rng.NextInt(1900, 1939));
    assert(status.ok());
    (void)status;
  }
  for (int i = 0; i < 9; ++i) {
    const Status status = AppendBook(
        table.get(), "Carl Jung", random_title(/*force_dreams=*/i < 6),
        "psychology", 10.0 + rng.NextDouble() * 30, rng.NextInt(1910, 1960));
    assert(status.ok());
    (void)status;
  }
  while (table->num_rows() < num_books) {
    const Status status =
        AppendBook(table.get(), SyntheticAuthor(author_zipf.Sample(&rng)),
                   random_title(false),
                   kSubjects[rng.NextIndex(std::size(kSubjects))],
                   5.0 + rng.NextDouble() * 95, rng.NextInt(1950, 1999));
    assert(status.ok());
    (void)status;
  }

  // Capability: one author, one title keyword, one subject, conjunctively;
  // at least one field filled in; no catalog download.
  CapabilityBuilder builder("books", schema);
  CapabilityBuilder::Slot author_slot{"author", {CompareOp::kEq}, true, false};
  CapabilityBuilder::Slot title_slot{
      "title", {CompareOp::kContains}, true, false};
  CapabilityBuilder::Slot subject_slot{"subject", {CompareOp::kEq}, true, false};
  const Status built = builder.AddConjunctiveForm(
      "book_search", {author_slot, title_slot, subject_slot}, all_attrs);
  assert(built.ok());
  (void)built;

  Dataset dataset{nullptr, builder.Build(), nullptr, {}};
  dataset.description.set_cost_constants(20.0, 1.0);
  dataset.table = std::move(table);

  const Result<ConditionPtr> cond = ParseCondition(
      "(author = \"Sigmund Freud\" or author = \"Carl Jung\") and "
      "title contains \"dreams\"");
  assert(cond.ok());
  dataset.example_condition = cond.value();
  dataset.example_attrs = {"author", "title", "price"};
  return dataset;
}

Dataset MakeCarSource(size_t num_cars, uint64_t seed) {
  Rng rng(seed);
  Schema schema({{"make", ValueType::kString},
                 {"model", ValueType::kString},
                 {"style", ValueType::kString},
                 {"size", ValueType::kString},
                 {"color", ValueType::kString},
                 {"price", ValueType::kInt},
                 {"year", ValueType::kInt}});

  static const char* const kMakes[] = {"Toyota", "BMW",   "Honda", "Ford",
                                       "Volvo",  "Mazda", "Audi",  "Fiat",
                                       "Saab",   "Dodge"};
  static const char* const kStyles[] = {"sedan", "coupe", "suv", "wagon"};
  static const char* const kSizes[] = {"compact", "midsize", "fullsize"};
  static const char* const kColors[] = {"red",   "black", "white",
                                        "blue",  "green", "silver"};

  auto table = std::make_unique<Table>("cars", schema);
  const ZipfSampler make_zipf(std::size(kMakes), 0.8);
  while (table->num_rows() < num_cars) {
    const std::string make = kMakes[make_zipf.Sample(&rng)];
    // Price bands: BMW/Audi premium, others mainstream.
    const bool premium = make == "BMW" || make == "Audi" || make == "Volvo";
    const int64_t base = premium ? 25000 : 9000;
    const int64_t spread = premium ? 45000 : 26000;
    const Status status = table->AppendValues(
        {Value::String(make),
         Value::String(make.substr(0, 2) + "-" +
                       std::to_string(rng.NextInt(100, 999))),
         Value::String(kStyles[rng.NextIndex(std::size(kStyles))]),
         Value::String(kSizes[rng.NextIndex(std::size(kSizes))]),
         Value::String(kColors[rng.NextIndex(std::size(kColors))]),
         Value::Int(base + rng.NextInt(0, spread)),
         Value::Int(rng.NextInt(1992, 1999))});
    assert(status.ok());
    (void)status;
  }

  // The web form: single values for style, make and price (upper bound),
  // plus a list of values for size. All fields optional but at least one
  // must be filled; no download.
  const std::vector<std::string> all_attrs = {
      "make", "model", "style", "size", "color", "price", "year"};
  CapabilityBuilder builder("cars", schema);
  CapabilityBuilder::Slot style_slot{"style", {CompareOp::kEq}, true, false};
  CapabilityBuilder::Slot make_slot{"make", {CompareOp::kEq}, true, false};
  CapabilityBuilder::Slot price_slot{
      "price", {CompareOp::kLe, CompareOp::kLt}, true, false};
  CapabilityBuilder::Slot size_slot{"size", {CompareOp::kEq}, true, true};
  const Status built = builder.AddConjunctiveForm(
      "car_form", {style_slot, make_slot, price_slot, size_slot}, all_attrs);
  assert(built.ok());
  (void)built;

  Dataset dataset{nullptr, builder.Build(), nullptr, {}};
  dataset.description.set_cost_constants(15.0, 1.0);
  dataset.table = std::move(table);

  const Result<ConditionPtr> cond = ParseCondition(
      "style = \"sedan\" and (size = \"compact\" or size = \"midsize\") and "
      "((make = \"Toyota\" and price <= 20000) or "
      "(make = \"BMW\" and price <= 40000))");
  assert(cond.ok());
  dataset.example_condition = cond.value();
  dataset.example_attrs = {"make", "model", "price", "year"};
  return dataset;
}

std::vector<AttributeDomain> ExtractDomains(const Table& table,
                                            size_t max_samples, Rng* rng) {
  std::vector<AttributeDomain> domains;
  const Schema& schema = table.schema();
  domains.reserve(schema.num_attributes());
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    AttributeDomain domain;
    domain.name = schema.attribute(static_cast<int>(a)).name;
    domain.type = schema.attribute(static_cast<int>(a)).type;
    if (!table.rows().empty()) {
      for (size_t i = 0; i < max_samples * 3 &&
                         domain.sample_values.size() < max_samples;
           ++i) {
        const Row& row = table.rows()[rng->NextIndex(table.num_rows())];
        const Value& v = row.value(a);
        if (v.is_null()) continue;
        bool duplicate = false;
        for (const Value& existing : domain.sample_values) {
          if (existing == v) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) domain.sample_values.push_back(v);
      }
    }
    domains.push_back(std::move(domain));
  }
  return domains;
}

std::unique_ptr<Table> MakeRandomTable(const std::string& name,
                                       const Schema& schema, size_t rows,
                                       size_t string_pool, int64_t value_range,
                                       Rng* rng) {
  auto table = std::make_unique<Table>(name, schema);
  const ZipfSampler pool_zipf(string_pool, 0.9);
  for (size_t r = 0; r < rows; ++r) {
    std::vector<Value> values;
    values.reserve(schema.num_attributes());
    for (size_t a = 0; a < schema.num_attributes(); ++a) {
      switch (schema.attribute(static_cast<int>(a)).type) {
        case ValueType::kString:
          values.push_back(Value::String(
              "v" + std::to_string(a) + "_" +
              std::to_string(pool_zipf.Sample(rng))));
          break;
        case ValueType::kInt:
          values.push_back(Value::Int(rng->NextInt(0, value_range - 1)));
          break;
        case ValueType::kDouble:
          values.push_back(
              Value::Double(rng->NextDouble() * static_cast<double>(value_range)));
          break;
        case ValueType::kBool:
          values.push_back(Value::Bool(rng->NextBool()));
          break;
        case ValueType::kNull:
          values.push_back(Value::Null());
          break;
      }
    }
    const Status status = table->Append(Row(std::move(values)));
    assert(status.ok());
    (void)status;
  }
  return table;
}

}  // namespace gencompact
