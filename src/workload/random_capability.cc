#include "workload/random_capability.h"

#include <cassert>

#include "ssdl/capability_builder.h"

namespace gencompact {

namespace {

std::vector<CompareOp> OpsFor(ValueType type, Rng* rng) {
  switch (type) {
    case ValueType::kString: {
      std::vector<CompareOp> ops = {CompareOp::kEq};
      if (rng->NextBool(0.5)) ops.push_back(CompareOp::kContains);
      return ops;
    }
    case ValueType::kInt:
    case ValueType::kDouble: {
      std::vector<CompareOp> ops = {CompareOp::kEq};
      if (rng->NextBool(0.7)) {
        ops.push_back(CompareOp::kLe);
        ops.push_back(CompareOp::kLt);
      }
      if (rng->NextBool(0.5)) {
        ops.push_back(CompareOp::kGe);
        ops.push_back(CompareOp::kGt);
      }
      return ops;
    }
    default:
      return {CompareOp::kEq};
  }
}

std::vector<std::string> RandomExports(const Schema& schema,
                                       const AttributeSet& must_include,
                                       double export_all_probability,
                                       Rng* rng) {
  std::vector<std::string> exports;
  const bool all = rng->NextBool(export_all_probability);
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    const int index = static_cast<int>(a);
    if (all || must_include.Contains(index) || rng->NextBool(0.5)) {
      exports.push_back(schema.attribute(index).name);
    }
  }
  return exports;
}

}  // namespace

SourceDescription RandomCapability(const std::string& source_name,
                                   const Schema& schema,
                                   const RandomCapabilityOptions& options,
                                   Rng* rng) {
  CapabilityBuilder builder(source_name, schema);
  const size_t width = schema.num_attributes();
  assert(width > 0);

  for (size_t f = 0; f < options.num_conjunctive_forms; ++f) {
    // Pick a random ordered subset of attributes as slots.
    std::vector<int> attrs;
    for (size_t a = 0; a < width; ++a) attrs.push_back(static_cast<int>(a));
    rng->Shuffle(&attrs);
    const size_t num_slots =
        1 + rng->NextIndex(std::min(options.max_slots_per_form, width));
    attrs.resize(num_slots);

    AttributeSet slot_set;
    std::vector<CapabilityBuilder::Slot> slots;
    for (int index : attrs) {
      CapabilityBuilder::Slot slot;
      slot.attr = schema.attribute(index).name;
      slot.ops = OpsFor(schema.attribute(index).type, rng);
      slot.optional = rng->NextBool(options.optional_slot_probability);
      slot.value_list = rng->NextBool(options.value_list_probability);
      slot_set.Add(index);
      slots.push_back(std::move(slot));
    }
    // Keep at least one mandatory slot so the form is never empty.
    slots.front().optional = false;

    const Status status = builder.AddConjunctiveForm(
        "cap_form" + std::to_string(f), std::move(slots),
        RandomExports(schema, slot_set, options.export_all_probability, rng));
    assert(status.ok());
    (void)status;
  }

  if (rng->NextBool(options.atomic_forms_probability)) {
    std::vector<CapabilityBuilder::Slot> slots;
    AttributeSet slot_set;
    for (size_t a = 0; a < width; ++a) {
      if (!rng->NextBool(0.6)) continue;
      const int index = static_cast<int>(a);
      CapabilityBuilder::Slot slot;
      slot.attr = schema.attribute(index).name;
      slot.ops = OpsFor(schema.attribute(index).type, rng);
      slot_set.Add(index);
      slots.push_back(std::move(slot));
    }
    if (!slots.empty()) {
      const Status status = builder.AddAtomicForms(
          "cap_atoms", std::move(slots),
          RandomExports(schema, slot_set, options.export_all_probability, rng));
      assert(status.ok());
      (void)status;
    }
  }

  if (rng->NextBool(options.download_probability)) {
    std::vector<std::string> all;
    for (size_t a = 0; a < width; ++a) {
      all.push_back(schema.attribute(static_cast<int>(a)).name);
    }
    const Status status = builder.AddDownload("cap_download", all);
    assert(status.ok());
    (void)status;
  }

  SourceDescription description = builder.Build();
  description.set_cost_constants(options.k1, options.k2);
  return description;
}

}  // namespace gencompact
