#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace gencompact {

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n == 0 ? 1 : n);
  double total = 0;
  for (size_t i = 0; i < cdf_.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<size_t>(it - cdf_.begin());
}

}  // namespace gencompact
