#include "workload/random_condition.h"

#include <cassert>

namespace gencompact {

namespace {

ConditionPtr RandomAtom(const std::vector<AttributeDomain>& domains,
                        const RandomConditionOptions& options, Rng* rng) {
  // Pick a domain with at least one sample value.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const AttributeDomain& domain = domains[rng->NextIndex(domains.size())];
    if (domain.sample_values.empty()) continue;
    const Value& sample =
        domain.sample_values[rng->NextIndex(domain.sample_values.size())];
    CompareOp op = CompareOp::kEq;
    switch (domain.type) {
      case ValueType::kString:
        if (rng->NextBool(options.contains_probability)) {
          op = CompareOp::kContains;
          // Use a fragment of the sampled string so `contains` is
          // non-trivially selective.
          const std::string& s = sample.string_value();
          const size_t len = s.size() > 3 ? 3 + rng->NextIndex(s.size() - 3) : s.size();
          return ConditionNode::Atom(domain.name, op,
                                     Value::String(s.substr(0, len)));
        }
        break;
      case ValueType::kInt:
      case ValueType::kDouble:
        if (rng->NextBool(options.range_probability)) {
          static constexpr CompareOp kRangeOps[] = {CompareOp::kLt,
                                                    CompareOp::kLe,
                                                    CompareOp::kGt,
                                                    CompareOp::kGe};
          op = kRangeOps[rng->NextIndex(4)];
        }
        break;
      default:
        break;
    }
    return ConditionNode::Atom(domain.name, op, sample);
  }
  // Degenerate fallback: no sampled values anywhere.
  return ConditionNode::Atom(domains.front().name, CompareOp::kEq,
                             Value::Int(0));
}

ConditionPtr Build(const std::vector<AttributeDomain>& domains,
                   const RandomConditionOptions& options, size_t atoms,
                   ConditionNode::Kind kind, Rng* rng) {
  if (atoms == 1) return RandomAtom(domains, options, rng);
  // Split `atoms` across 2..max_fanout children.
  const size_t max_children =
      std::min(options.max_fanout, atoms);
  const size_t num_children =
      2 + (max_children > 2 ? rng->NextIndex(max_children - 1) : 0);
  std::vector<size_t> split(std::min(num_children, atoms), 1);
  size_t remaining = atoms - split.size();
  while (remaining > 0) {
    split[rng->NextIndex(split.size())] += 1;
    --remaining;
  }
  const ConditionNode::Kind child_kind = kind == ConditionNode::Kind::kAnd
                                             ? ConditionNode::Kind::kOr
                                             : ConditionNode::Kind::kAnd;
  std::vector<ConditionPtr> children;
  children.reserve(split.size());
  for (size_t child_atoms : split) {
    children.push_back(Build(domains, options, child_atoms, child_kind, rng));
  }
  return ConditionNode::Connector(kind, std::move(children));
}

}  // namespace

ConditionPtr RandomCondition(const std::vector<AttributeDomain>& domains,
                             const RandomConditionOptions& options, Rng* rng) {
  assert(!domains.empty());
  const size_t atoms = options.num_atoms == 0 ? 1 : options.num_atoms;
  const ConditionNode::Kind root_kind = rng->NextBool(options.or_probability)
                                            ? ConditionNode::Kind::kOr
                                            : ConditionNode::Kind::kAnd;
  return Build(domains, options, atoms, root_kind, rng);
}

}  // namespace gencompact
