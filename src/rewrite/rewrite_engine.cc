#include "rewrite/rewrite_engine.h"

#include <deque>

#include "expr/canonical.h"
#include "expr/intern.h"

namespace gencompact {

RewriteResult GenerateRewritings(const ConditionPtr& root,
                                 const RewriteOptions& options) {
  RewriteResult result;
  const size_t max_atoms =
      options.max_atoms != 0 ? options.max_atoms : 2 * root->CountAtoms();

  // Interned trees make this a pointer-identity set; ConditionSet keeps the
  // closure correct even when the interning ablation disables hash-consing.
  ConditionSet seen;
  std::deque<ConditionPtr> frontier;

  const auto admit = [&](const ConditionPtr& ct) {
    const ConditionPtr stored = options.canonicalize ? Canonicalize(ct) : ct;
    if (!seen.Insert(stored)) return;
    result.cts.push_back(stored);
    frontier.push_back(stored);
  };

  admit(root);

  while (!frontier.empty()) {
    if (result.cts.size() >= options.max_cts) {
      result.budget_exhausted = true;
      break;
    }
    const ConditionPtr current = frontier.front();
    frontier.pop_front();

    std::vector<ConditionPtr> steps;
    SingleStepRewrites(current, options.rules, max_atoms, &steps);
    result.rule_applications += steps.size();
    for (const ConditionPtr& step : steps) {
      if (result.cts.size() >= options.max_cts) {
        result.budget_exhausted = true;
        break;
      }
      admit(step);
    }
    if (result.budget_exhausted) break;
  }
  return result;
}

}  // namespace gencompact
