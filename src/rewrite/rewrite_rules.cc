#include "rewrite/rewrite_rules.h"

#include <functional>

namespace gencompact {

namespace {

// Local (at-this-node) single-step variants of `node`.
void LocalVariants(const ConditionPtr& node, const RewriteRuleSet& rules,
                   std::vector<ConditionPtr>* out) {
  if (!node->is_connector()) return;
  const ConditionNode::Kind kind = node->kind();
  const ConditionNode::Kind dual = kind == ConditionNode::Kind::kAnd
                                       ? ConditionNode::Kind::kOr
                                       : ConditionNode::Kind::kAnd;
  const std::vector<ConditionPtr>& children = node->children();
  const size_t k = children.size();

  if (rules.commutative) {
    // Adjacent transpositions generate the full symmetric group under
    // closure.
    for (size_t i = 0; i + 1 < k; ++i) {
      std::vector<ConditionPtr> swapped = children;
      std::swap(swapped[i], swapped[i + 1]);
      out->push_back(ConditionNode::Connector(kind, std::move(swapped)));
    }
  }

  if (rules.associative) {
    // Group an adjacent pair.
    if (k >= 3) {
      for (size_t i = 0; i + 1 < k; ++i) {
        std::vector<ConditionPtr> grouped;
        grouped.reserve(k - 1);
        for (size_t j = 0; j < k; ++j) {
          if (j == i) {
            grouped.push_back(
                ConditionNode::Connector(kind, {children[i], children[i + 1]}));
            ++j;  // skip i+1
          } else {
            grouped.push_back(children[j]);
          }
        }
        out->push_back(ConditionNode::Connector(kind, std::move(grouped)));
      }
    }
    // Flatten a same-kind child.
    for (size_t i = 0; i < k; ++i) {
      if (children[i]->kind() != kind) continue;
      std::vector<ConditionPtr> flattened;
      flattened.reserve(k + children[i]->children().size() - 1);
      for (size_t j = 0; j < k; ++j) {
        if (j == i) {
          for (const ConditionPtr& grandchild : children[i]->children()) {
            flattened.push_back(grandchild);
          }
        } else {
          flattened.push_back(children[j]);
        }
      }
      out->push_back(ConditionNode::Connector(kind, std::move(flattened)));
    }
  }

  if (rules.distributive) {
    // Distribute over one opposite-kind child: for each child D of dual
    // kind, the whole node becomes dual(kind(rest..., d) for d in D).
    for (size_t i = 0; i < k; ++i) {
      if (children[i]->kind() != dual) continue;
      std::vector<ConditionPtr> distributed;
      distributed.reserve(children[i]->children().size());
      for (const ConditionPtr& alt : children[i]->children()) {
        std::vector<ConditionPtr> inner;
        inner.reserve(k);
        for (size_t j = 0; j < k; ++j) {
          inner.push_back(j == i ? alt : children[j]);
        }
        distributed.push_back(ConditionNode::Connector(kind, std::move(inner)));
      }
      out->push_back(ConditionNode::Connector(dual, std::move(distributed)));
    }
  }
}

void CopyVariants(const ConditionPtr& node, size_t root_atoms, size_t max_atoms,
                  std::vector<ConditionPtr>* out) {
  if (!node->is_connector()) return;
  const std::vector<ConditionPtr>& children = node->children();
  for (size_t i = 0; i < children.size(); ++i) {
    if (root_atoms + children[i]->CountAtoms() > max_atoms) continue;
    std::vector<ConditionPtr> duplicated;
    duplicated.reserve(children.size() + 1);
    for (size_t j = 0; j < children.size(); ++j) {
      duplicated.push_back(children[j]);
      if (j == i) duplicated.push_back(children[j]);
    }
    out->push_back(ConditionNode::Connector(node->kind(), std::move(duplicated)));
  }
}

// Recursively produces all trees equal to `root` with exactly one rewrite
// applied somewhere in the subtree rooted at `node`, where `rebuild` maps a
// replacement for `node` to a full-tree replacement.
void Visit(const ConditionPtr& node, const RewriteRuleSet& rules,
           size_t root_atoms, size_t max_atoms,
           const std::function<ConditionPtr(ConditionPtr)>& rebuild,
           std::vector<ConditionPtr>* out) {
  std::vector<ConditionPtr> local;
  LocalVariants(node, rules, &local);
  if (rules.copy) CopyVariants(node, root_atoms, max_atoms, &local);
  for (ConditionPtr& variant : local) {
    out->push_back(rebuild(std::move(variant)));
  }
  const std::vector<ConditionPtr>& children = node->children();
  for (size_t i = 0; i < children.size(); ++i) {
    auto child_rebuild = [&node, &rebuild, i](ConditionPtr replacement) {
      std::vector<ConditionPtr> new_children = node->children();
      new_children[i] = std::move(replacement);
      return rebuild(
          ConditionNode::Connector(node->kind(), std::move(new_children)));
    };
    Visit(children[i], rules, root_atoms, max_atoms, child_rebuild, out);
  }
}

}  // namespace

void SingleStepRewrites(const ConditionPtr& root, const RewriteRuleSet& rules,
                        size_t max_atoms, std::vector<ConditionPtr>* out) {
  const size_t root_atoms = root->CountAtoms();
  Visit(root, rules, root_atoms, max_atoms,
        [](ConditionPtr replacement) { return replacement; }, out);
}

}  // namespace gencompact
