#ifndef GENCOMPACT_REWRITE_REWRITE_RULES_H_
#define GENCOMPACT_REWRITE_REWRITE_RULES_H_

#include <vector>

#include "expr/condition.h"

namespace gencompact {

/// Which algebraic rewrite rules are enabled (Section 5.1). GenModular uses
/// all four; GenCompact drops commutativity (folded into the SSDL closure),
/// associativity and copy (absorbed by IPG's canonical CTs and overlapping
/// set covers), keeping only distributivity.
struct RewriteRuleSet {
  bool commutative = true;
  bool associative = true;
  bool distributive = true;
  bool copy = true;

  static RewriteRuleSet All() { return RewriteRuleSet{}; }
  static RewriteRuleSet DistributiveOnly() {
    return RewriteRuleSet{false, false, true, false};
  }
};

/// Appends to `out` every condition tree reachable from `root` by exactly
/// one application of an enabled rule at any node:
///  * commutative: swap two adjacent children of a connector;
///  * associative (group): wrap two adjacent children of a connector in a
///    nested connector of the same kind;
///  * associative (flatten): splice a same-kind child connector inline;
///  * distributive (expand): for a mixed connector, distribute over one
///    opposite-kind child, e.g. (C1 ∧ (C2 ∨ C3)) ⇒ ((C1∧C2) ∨ (C1∧C3)) and
///    dually for ∨ over ∧;
///  * copy: duplicate one child of a connector (C ≡ C∧C / C ≡ C∨C), bounded
///    by `max_atoms` on the resulting tree.
///
/// Every produced tree is semantically equivalent to `root`.
void SingleStepRewrites(const ConditionPtr& root, const RewriteRuleSet& rules,
                        size_t max_atoms, std::vector<ConditionPtr>* out);

}  // namespace gencompact

#endif  // GENCOMPACT_REWRITE_REWRITE_RULES_H_
