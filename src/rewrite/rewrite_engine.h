#ifndef GENCOMPACT_REWRITE_REWRITE_ENGINE_H_
#define GENCOMPACT_REWRITE_REWRITE_ENGINE_H_

#include <vector>

#include "rewrite/rewrite_rules.h"

namespace gencompact {

/// Budgeted closure options for the rewrite module.
struct RewriteOptions {
  RewriteRuleSet rules = RewriteRuleSet::All();

  /// Stop once this many distinct CTs have been produced. The rewrite space
  /// is astronomically large for non-trivial queries (that is GenModular's
  /// core weakness, Section 6); the budget keeps the baseline runnable and
  /// is reported via RewriteResult::budget_exhausted.
  size_t max_cts = 512;

  /// Copy-rule growth bound: rewritten CTs may have at most this many atoms.
  /// 0 means "twice the original atom count".
  size_t max_atoms = 0;

  /// Canonicalize each produced CT before deduplication. GenCompact's
  /// reduced rewrite module sets this (its plan generator only consumes
  /// canonical CTs); GenModular keeps raw shapes (associativity matters).
  bool canonicalize = false;
};

struct RewriteResult {
  /// Distinct equivalent CTs, starting with the (possibly canonicalized)
  /// original.
  std::vector<ConditionPtr> cts;
  bool budget_exhausted = false;
  /// Total single-step rule firings performed.
  size_t rule_applications = 0;
};

/// Computes the closure of `root` under the enabled rewrite rules,
/// breadth-first with structural deduplication, until fixpoint or budget.
RewriteResult GenerateRewritings(const ConditionPtr& root,
                                 const RewriteOptions& options);

}  // namespace gencompact

#endif  // GENCOMPACT_REWRITE_REWRITE_ENGINE_H_
