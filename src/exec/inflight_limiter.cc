#include "exec/inflight_limiter.h"

#include <utility>
#include <vector>

namespace gencompact {

namespace {

constexpr std::chrono::steady_clock::time_point kNoDeadline{};

void BumpPeak(std::atomic<size_t>& peak, size_t value) {
  size_t prev = peak.load(std::memory_order_relaxed);
  while (prev < value &&
         !peak.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

bool InflightLimiter::HasCapacity(uint32_t source_id) const {
  const size_t total = inflight_.load(std::memory_order_relaxed);
  if (options_.global > 0 && total >= options_.global) return false;
  if (options_.per_source > 0) {
    const auto it = per_source_inflight_.find(source_id);
    if (it != per_source_inflight_.end() && it->second >= options_.per_source) {
      return false;
    }
  }
  return true;
}

void InflightLimiter::Take(uint32_t source_id) {
  const size_t total = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  BumpPeak(peak_inflight_, total);
  ++per_source_inflight_[source_id];
  admitted_.fetch_add(1, std::memory_order_relaxed);
}

void InflightLimiter::Acquire(uint32_t source_id,
                              std::chrono::steady_clock::time_point deadline,
                              Grant grant) {
  // FIFO fairness: an earlier waiter for the same source must not be starved
  // by a newcomer, so capacity only admits directly when no one is queued
  // ahead for that source (waiters for *other* sources don't block us — a
  // per-source cap on R shouldn't idle capacity on S).
  bool blocked_by_queue = false;
  for (const Waiter& w : waiters_) {
    if (w.source_id == source_id) {
      blocked_by_queue = true;
      break;
    }
  }
  if (!blocked_by_queue && HasCapacity(source_id)) {
    Take(source_id);
    grant(Status::OK());
    return;
  }
  if (deadline != kNoDeadline && clock_->Now() >= deadline) {
    deadline_failures_.fetch_add(1, std::memory_order_relaxed);
    grant(Status::DeadlineExceeded(
        "in-flight limiter: deadline expired before a permit freed up"));
    return;
  }
  Waiter waiter;
  waiter.source_id = source_id;
  waiter.deadline = deadline;
  waiter.grant = std::move(grant);
  waiters_.push_back(std::move(waiter));
  const size_t depth = queue_depth_.fetch_add(1, std::memory_order_relaxed) + 1;
  BumpPeak(peak_queue_depth_, depth);
}

bool InflightLimiter::TryAcquire(uint32_t source_id) {
  if (!HasCapacity(source_id)) return false;
  Take(source_id);
  return true;
}

void InflightLimiter::Release(uint32_t source_id) {
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  const auto it = per_source_inflight_.find(source_id);
  if (it != per_source_inflight_.end() && --it->second == 0) {
    per_source_inflight_.erase(it);
  }
  PumpQueue();
}

void InflightLimiter::PumpQueue() {
  // Sweep expired waiters out (failing them), then grant in FIFO order while
  // capacity lasts. Grants can release and re-acquire synchronously, but only
  // on this (the loop) thread, so iteration by index over the deque is safe
  // as long as we restart after every callback.
  const auto now = clock_->Now();
  for (;;) {
    bool acted = false;
    for (size_t i = 0; i < waiters_.size(); ++i) {
      Waiter& w = waiters_[i];
      if (w.deadline != kNoDeadline && now >= w.deadline) {
        Grant grant = std::move(w.grant);
        waiters_.erase(waiters_.begin() + static_cast<ptrdiff_t>(i));
        queue_depth_.fetch_sub(1, std::memory_order_relaxed);
        deadline_failures_.fetch_add(1, std::memory_order_relaxed);
        grant(Status::DeadlineExceeded(
            "in-flight limiter: deadline expired before a permit freed up"));
        acted = true;
        break;
      }
      if (HasCapacity(w.source_id)) {
        const uint32_t sid = w.source_id;
        Grant grant = std::move(w.grant);
        waiters_.erase(waiters_.begin() + static_cast<ptrdiff_t>(i));
        queue_depth_.fetch_sub(1, std::memory_order_relaxed);
        Take(sid);
        grant(Status::OK());
        acted = true;
        break;
      }
      // Head-of-line wait for this source: skip only waiters whose source
      // still has capacity blocked; a later waiter for a *different*
      // unconstrained source may be granted (no cross-source starvation).
    }
    if (!acted) return;
  }
}

}  // namespace gencompact
