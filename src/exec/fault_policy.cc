#include "exec/fault_policy.h"

#include "common/rng.h"

namespace gencompact {
namespace {

/// Per-call deterministic stream: a fresh Rng keyed by (seed, call index).
/// splitmix-style premix keeps adjacent indices uncorrelated.
uint64_t MixSeed(uint64_t seed, uint64_t index) {
  uint64_t x = seed ^ (index + 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::Decision FaultInjector::NextCall(uint64_t page_offset,
                                                uint64_t fingerprint) {
  const uint64_t index = calls_.fetch_add(1, std::memory_order_relaxed);
  Decision decision;

  // Scripted failures first: decrement one token if any remain.
  uint64_t remaining = fail_next_.load(std::memory_order_relaxed);
  while (remaining > 0) {
    if (fail_next_.compare_exchange_weak(remaining, remaining - 1,
                                         std::memory_order_relaxed)) {
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      decision.code = StatusCode::kUnavailable;
      decision.reason = "scripted failure";
      return decision;
    }
  }

  // Page-indexed schedule: faults keyed on the requested page offset, so
  // tests can fail a specific page mid-loop regardless of how many calls
  // (retries, other pages) came before it.
  if (!policy_.page_faults.empty()) {
    const std::lock_guard<std::mutex> lock(page_mu_);
    const auto it = page_fail_remaining_.find(page_offset);
    if (it != page_fail_remaining_.end() && it->second > 0) {
      --it->second;
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      decision.code = StatusCode::kUnavailable;
      decision.reason = "page fault";
      return decision;
    }
  }

  for (const FaultPolicy::Outage& outage : policy_.outages) {
    if (index >= outage.begin && index < outage.end) {
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      decision.code = StatusCode::kUnavailable;
      decision.reason = "hard outage";
      return decision;
    }
  }

  if (policy_.transient_error_rate > 0 || policy_.stuck_call_rate > 0 ||
      policy_.slow_call_rate > 0) {
    uint64_t draw_key = index;
    if (policy_.keyed_schedule) {
      // Interleaving-independent stream: the draw depends only on which
      // logical call this is — (fingerprint, offset, attempt number) — not
      // on how many other calls the source happened to serve first.
      const uint64_t slot = MixSeed(fingerprint, page_offset);
      uint64_t attempt;
      {
        const std::lock_guard<std::mutex> lock(keyed_mu_);
        attempt = keyed_attempts_[slot]++;
      }
      draw_key = MixSeed(slot, attempt);
    }
    Rng rng(MixSeed(policy_.seed, draw_key));
    if (policy_.transient_error_rate > 0 &&
        rng.NextDouble() < policy_.transient_error_rate) {
      unavailable_.fetch_add(1, std::memory_order_relaxed);
      decision.code = StatusCode::kUnavailable;
      decision.reason = "transient fault";
      return decision;
    }
    if (policy_.stuck_call_rate > 0 &&
        rng.NextDouble() < policy_.stuck_call_rate) {
      timeouts_.fetch_add(1, std::memory_order_relaxed);
      decision.code = StatusCode::kDeadlineExceeded;
      decision.extra_latency = policy_.stuck_penalty;
      decision.reason = "stuck call";
      return decision;
    }
    if (policy_.slow_call_rate > 0 &&
        rng.NextDouble() < policy_.slow_call_rate) {
      slow_.fetch_add(1, std::memory_order_relaxed);
      decision.extra_latency = policy_.slow_latency;
      decision.reason = "slow call";
      return decision;
    }
  }
  return decision;
}

}  // namespace gencompact
