#ifndef GENCOMPACT_EXEC_EVENT_LOOP_H_
#define GENCOMPACT_EXEC_EVENT_LOOP_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/clock.h"

namespace gencompact {

/// Construction knobs for EventLoop.
struct EventLoopOptions {
  /// Time source; null = Clock::Real().
  Clock* clock = nullptr;
  /// Manual drive: no loop thread is spawned — the constructing thread owns
  /// the loop and pumps it via PumpReady()/NextTimerDeadline() (what the
  /// SimulatedEventLoop test harness does, stepping virtual time between
  /// pumps). Default: a dedicated loop thread runs Run().
  bool manual = false;
  /// Tie-break order among timers that share an exact deadline: 0 fires them
  /// in schedule order (the id); any other value fires them in a pseudo-random
  /// permutation derived from (seed, timer id). The permutation is a pure
  /// function of the seed, so a schedule that fails under seed S replays
  /// identically from S — the deterministic-interleaving harness sweeps seeds
  /// to explore orderings the production tie-break would never produce.
  uint64_t tie_break_seed = 0;
};

/// A single-threaded event loop: a ready queue of posted tasks plus a hashed
/// timer wheel, both driven by the injectable Clock. One loop thread runs
/// every continuation of the async executor, so execution state touched only
/// from loop tasks needs no locks; anything that must wait — a simulated
/// source round trip, a backoff sleep, a hedge delay, a breaker probe — is a
/// timer event instead of a parked thread.
///
/// Time is virtualized through Clock::AwaitFor: under the real clock the
/// loop blocks on a condition variable until the next timer deadline (or an
/// earlier Post), and under a FakeClock the wait advances virtual time to
/// the deadline instantly — the whole timer schedule replays deterministically
/// with zero wall-clock cost, which is what makes the async retry/hedge/
/// deadline tests exact.
///
/// Timers are bucketed by deadline into a fixed-slot wheel (insertion and
/// cancellation are O(1) map + slot operations); firing walks the wheel and
/// releases every entry whose exact deadline has passed, in (deadline,
/// tie-break order) — the wheel's granularity affects bucketing only, never
/// when a timer fires.
class EventLoop {
 public:
  using TimerId = uint64_t;

  /// Starts the loop thread. `clock` may be null (= Clock::Real()).
  explicit EventLoop(Clock* clock = nullptr)
      : EventLoop(WithClock(clock)) {}

  explicit EventLoop(const EventLoopOptions& options);

  /// Stops intake, drains tasks already posted, joins the loop thread (when
  /// one exists). Armed timers whose deadline has not passed are dropped (a
  /// loop is destroyed only when no execution is in flight, like the
  /// mediator itself).
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Enqueues `fn` to run on the loop thread. Thread-safe; callable from the
  /// loop thread itself (the task runs on a later iteration, never inline).
  void Post(std::function<void()> fn);

  /// Arms a timer: `fn` runs on the loop thread once `delay` has elapsed on
  /// the loop's clock (a non-positive delay fires on the next iteration).
  /// Thread-safe. Returns an id usable with Cancel.
  TimerId ScheduleAfter(std::chrono::microseconds delay,
                        std::function<void()> fn);

  /// Best-effort cancellation: true if the timer was still armed (it will
  /// not fire), false if it already fired, was cancelled, or never existed.
  bool Cancel(TimerId id);

  /// True when called from the loop thread (continuations assert this
  /// before touching loop-confined state). In manual mode the constructing
  /// thread IS the loop thread.
  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_id_;
  }

  Clock* clock() const { return clock_; }
  bool manual() const { return manual_; }

  // ---- Manual drive (manual mode only; call from the owning thread). ----

  /// Runs everything ready right now — all posted tasks, then every timer
  /// whose deadline has passed on the loop's clock, in (deadline, tie-break)
  /// order. Returns how many tasks/timers ran. Work they post or schedule
  /// with zero delay is NOT run in the same pump (call again, or Step the
  /// simulated loop) — each pump is one observable scheduling round.
  size_t PumpReady();

  /// Earliest armed timer deadline, or time_point::max() when none. Exact
  /// (recomputed), so a driver can advance a FakeClock straight to it.
  std::chrono::steady_clock::time_point NextTimerDeadline() const;

  /// Armed (uncancelled, unfired) timers right now — the wheel-size gauge.
  size_t timer_wheel_size() const {
    return armed_timers_.load(std::memory_order_relaxed);
  }

  struct Stats {
    uint64_t tasks_posted = 0;
    uint64_t tasks_run = 0;        ///< posted tasks + fired timers executed
    uint64_t timers_scheduled = 0;
    uint64_t timers_fired = 0;
    uint64_t timers_cancelled = 0;
    size_t timer_wheel_size = 0;
  };
  Stats stats() const;

 private:
  struct Timer {
    TimerId id = 0;
    std::chrono::steady_clock::time_point deadline;
    std::function<void()> fn;
  };

  static EventLoopOptions WithClock(Clock* clock) {
    EventLoopOptions options;
    options.clock = clock;
    return options;
  }

  // 256 slots x 1024us ticks: one wheel revolution covers ~262ms, longer
  // delays simply alias into their slot and are skipped (exact-deadline
  // check) until their revolution comes around.
  static constexpr size_t kNumSlots = 256;
  static constexpr int64_t kTickUs = 1024;

  static size_t SlotOf(std::chrono::steady_clock::time_point deadline) {
    const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                           deadline.time_since_epoch())
                           .count();
    return static_cast<size_t>((us / kTickUs) % static_cast<int64_t>(kNumSlots));
  }

  void Run();
  /// Moves every timer with deadline <= now into `due` (sorted by deadline,
  /// then the tie-break order) and refreshes next_deadline_. Caller holds mu_.
  void CollectDue(std::chrono::steady_clock::time_point now,
                  std::vector<Timer>* due);
  /// Recomputes next_deadline_ from the wheel. Caller holds mu_.
  void RefreshNextDeadline();

  Clock* clock_;
  const bool manual_;
  const uint64_t tie_break_seed_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::function<void()>> posted_;
  std::array<std::vector<Timer>, kNumSlots> wheel_;
  std::unordered_map<TimerId, size_t> timer_slot_;  // armed timer -> slot
  std::chrono::steady_clock::time_point next_deadline_{
      std::chrono::steady_clock::time_point::max()};
  TimerId next_timer_id_ = 1;
  bool stopping_ = false;

  std::atomic<size_t> armed_timers_{0};
  std::atomic<uint64_t> tasks_posted_{0};
  std::atomic<uint64_t> tasks_run_{0};
  std::atomic<uint64_t> timers_scheduled_{0};
  std::atomic<uint64_t> timers_fired_{0};
  std::atomic<uint64_t> timers_cancelled_{0};

  std::thread thread_;
  std::thread::id loop_thread_id_;
};

/// The deterministic-interleaving test harness: an EventLoop in manual mode
/// over its own FakeClock, stepped explicitly. Nothing runs until the test
/// calls Step()/RunUntilIdle()/AdvanceBy(), and everything that runs does so
/// on the test's own thread in a fully determined order:
///
///   - within one step, posted tasks run first (in post order), then due
///     timers in (deadline, tie-break) order;
///   - timers sharing an exact deadline fire in the seed's permutation, so
///     `SimulatedEventLoop(seed)` + the same script of Post/ScheduleAfter
///     calls replays one schedule exactly — a failing interleaving is
///     reproduced from (seed, script) alone, and sweeping seeds explores
///     orderings a wall-clock run could produce but never reproduce.
///
/// Virtual time only advances when a step finds no ready work: the clock
/// jumps straight to the earliest armed deadline. AdvanceBy() bounds the
/// jumpery to a window, firing everything due on the way in deadline order.
class SimulatedEventLoop {
 public:
  explicit SimulatedEventLoop(uint64_t seed = 0)
      : clock_(), loop_(MakeOptions(&clock_, seed)), seed_(seed) {}

  EventLoop* loop() { return &loop_; }
  FakeClock* clock() { return &clock_; }
  uint64_t seed() const { return seed_; }

  /// One deterministic step: run everything ready at the current virtual
  /// time; if nothing is ready but timers are armed, advance the clock to
  /// the earliest deadline and fire what lands. False when the loop is
  /// fully idle (no ready tasks, no armed timers).
  bool Step() {
    if (loop_.PumpReady() > 0) return true;
    const auto next = loop_.NextTimerDeadline();
    if (next == std::chrono::steady_clock::time_point::max()) return false;
    if (next > clock_.Now()) {
      clock_.Advance(std::chrono::duration_cast<std::chrono::microseconds>(
          next - clock_.Now()));
    }
    return loop_.PumpReady() > 0;
  }

  /// Steps until idle; returns total tasks + timers run. The async DAG
  /// walk always terminates (retry budgets bound repetition), so this does
  /// too.
  size_t RunUntilIdle() {
    size_t ran = 0;
    for (;;) {
      const size_t before = loop_.stats().tasks_run;
      if (!Step()) return ran;
      ran += loop_.stats().tasks_run - before;
    }
  }

  /// Advances virtual time by `duration`, firing everything that becomes
  /// due on the way in deadline order (not in one batch at the end), then
  /// leaves the clock exactly `duration` later. Returns tasks + timers run.
  size_t AdvanceBy(std::chrono::microseconds duration) {
    const auto target = clock_.Now() + duration;
    size_t ran = 0;
    for (;;) {
      ran += loop_.PumpReady();
      const auto next = loop_.NextTimerDeadline();
      if (next > target) break;
      if (next > clock_.Now()) {
        clock_.Advance(std::chrono::duration_cast<std::chrono::microseconds>(
            next - clock_.Now()));
      }
      ran += loop_.PumpReady();
    }
    if (target > clock_.Now()) {
      clock_.Advance(std::chrono::duration_cast<std::chrono::microseconds>(
          target - clock_.Now()));
    }
    ran += loop_.PumpReady();
    return ran;
  }

 private:
  static EventLoopOptions MakeOptions(Clock* clock, uint64_t seed) {
    EventLoopOptions options;
    options.clock = clock;
    options.manual = true;
    options.tie_break_seed = seed;
    return options;
  }

  FakeClock clock_;
  EventLoop loop_;
  uint64_t seed_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_EVENT_LOOP_H_
