#ifndef GENCOMPACT_EXEC_RETRY_POLICY_H_
#define GENCOMPACT_EXEC_RETRY_POLICY_H_

#include <chrono>
#include <cstdint>

#include "common/backoff.h"

namespace gencompact {

/// Retry discipline for one plan execution. Applies per *sub-query*: each
/// distinct SP(C, A, R) fetch gets up to `max_attempts` tries with
/// decorrelated-jitter backoff between them, all attempts sharing the
/// execution-wide `retry_budget` so a badly failing plan cannot multiply its
/// own source traffic without bound.
struct RetryPolicy {
  /// Attempts per sub-query, including the first (1 = never retry).
  size_t max_attempts = 1;

  /// Backoff bounds between attempts (decorrelated jitter, see backoff.h).
  BackoffPolicy backoff;

  /// Wall-time budget for one sub-query across all of its attempts and
  /// backoff sleeps; exceeded → kDeadlineExceeded. Zero = unlimited.
  std::chrono::microseconds sub_query_deadline{0};

  /// Total retries (attempts beyond each sub-query's first) one plan
  /// execution may spend.
  size_t retry_budget = 32;

  /// Seeds the per-sub-query backoff streams (combined with the sub-query
  /// identity, so parallel branches draw independent but reproducible
  /// jitter).
  uint64_t seed = 42;

  bool enabled() const { return max_attempts > 1; }
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_RETRY_POLICY_H_
