#ifndef GENCOMPACT_EXEC_SOURCE_H_
#define GENCOMPACT_EXEC_SOURCE_H_

#include <chrono>
#include <mutex>

#include "common/result.h"
#include "ssdl/check.h"
#include "storage/row_set.h"
#include "storage/table.h"

namespace gencompact {

/// A simulated Internet source: an in-memory relation behind a
/// capability-enforcing query interface. Execute() REJECTS any SP query the
/// SSDL description does not support — exactly like a real web form that
/// has no field for the condition you want — which is how the test suite
/// validates the paper's guarantee (1): plans emitted by the planners are
/// always accepted.
///
/// Execute() is thread-safe: the capability check (whose memo cache
/// mutates) and the statistics are guarded by a mutex, while the table scan
/// itself runs unlocked (the table is immutable once registered), so
/// concurrent queries from parallel plan children or multiple mediator
/// clients overlap on the expensive part.
class Source {
 public:
  /// Both pointers must outlive the Source. `description` should be the
  /// same (commutativity-closed) description the planner used; enforcement
  /// against the closed description models the mediator's query "fixing"
  /// step of Section 6.1 (see DESIGN.md).
  Source(const Table* table, const SourceDescription* description)
      : table_(table), description_(description), checker_(description) {}

  const Table& table() const { return *table_; }
  const SourceDescription& description() const { return *description_; }

  /// Executes SP(cond, attrs, R) with set semantics, or kUnsupported if the
  /// description does not accept the query.
  Result<RowSet> Execute(const ConditionNode& cond, const AttributeSet& attrs);

  /// Per-query latency injected at the start of every Execute() call,
  /// modelling the Internet round trip the paper's k1 stands for. Threads
  /// sleep concurrently, so parallel dispatch collapses the wall-clock cost
  /// of independent sub-queries. Default: no delay (unit tests stay fast).
  void set_simulated_latency(std::chrono::microseconds latency) {
    std::lock_guard<std::mutex> lock(mu_);
    simulated_latency_ = latency;
  }
  std::chrono::microseconds simulated_latency() const {
    std::lock_guard<std::mutex> lock(mu_);
    return simulated_latency_;
  }

  struct Stats {
    size_t queries_received = 0;
    size_t queries_answered = 0;
    size_t queries_rejected = 0;
    uint64_t rows_returned = 0;
  };
  /// A consistent snapshot (by value: stats move under concurrent queries).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = Stats();
  }

 private:
  const Table* table_;
  const SourceDescription* description_;
  mutable std::mutex mu_;  // guards checker_, stats_, simulated_latency_
  Checker checker_;
  Stats stats_;
  std::chrono::microseconds simulated_latency_{0};
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_SOURCE_H_
