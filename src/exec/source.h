#ifndef GENCOMPACT_EXEC_SOURCE_H_
#define GENCOMPACT_EXEC_SOURCE_H_

#include "common/result.h"
#include "ssdl/check.h"
#include "storage/row_set.h"
#include "storage/table.h"

namespace gencompact {

/// A simulated Internet source: an in-memory relation behind a
/// capability-enforcing query interface. Execute() REJECTS any SP query the
/// SSDL description does not support — exactly like a real web form that
/// has no field for the condition you want — which is how the test suite
/// validates the paper's guarantee (1): plans emitted by the planners are
/// always accepted.
class Source {
 public:
  /// Both pointers must outlive the Source. `description` should be the
  /// same (commutativity-closed) description the planner used; enforcement
  /// against the closed description models the mediator's query "fixing"
  /// step of Section 6.1 (see DESIGN.md).
  Source(const Table* table, const SourceDescription* description)
      : table_(table), description_(description), checker_(description) {}

  const Table& table() const { return *table_; }
  const SourceDescription& description() const { return *description_; }

  /// Executes SP(cond, attrs, R) with set semantics, or kUnsupported if the
  /// description does not accept the query.
  Result<RowSet> Execute(const ConditionNode& cond, const AttributeSet& attrs);

  struct Stats {
    size_t queries_received = 0;
    size_t queries_answered = 0;
    size_t queries_rejected = 0;
    uint64_t rows_returned = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  const Table* table_;
  const SourceDescription* description_;
  Checker checker_;
  Stats stats_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_SOURCE_H_
