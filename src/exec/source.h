#ifndef GENCOMPACT_EXEC_SOURCE_H_
#define GENCOMPACT_EXEC_SOURCE_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>

#include "common/result.h"
#include "exec/fault_policy.h"
#include "ssdl/check.h"
#include "storage/row_set.h"
#include "storage/table.h"

namespace gencompact {

/// One page request against a result-bounded source: start serving rows at
/// `offset` in the source's canonical (deterministic) result order. Offset 0
/// is the plain first call; a paging loop passes the previous response's
/// `next_offset` to continue.
struct PageRequest {
  uint64_t offset = 0;
  /// Sub-query identity for keyed fault schedules (FaultPolicy::
  /// keyed_schedule): executors stamp the hash of the sub-query key here so
  /// fault draws are a function of WHAT is being asked, not of global call
  /// order. Zero (the default) is a valid fingerprint for callers that do
  /// not care.
  uint64_t fingerprint = 0;
};

/// What a (possibly bounded) response says about itself — the "showing
/// 1-25 of 1000, next page ->" banner of a real web form.
struct PageInfo {
  bool bounded = false;      ///< a result bound was in force for this call
  uint64_t rows = 0;         ///< rows in this response
  uint64_t next_offset = 0;  ///< offset of the first row after this response
  bool has_more = false;     ///< rows beyond next_offset were withheld
};

/// A simulated Internet source: an in-memory relation behind a
/// capability-enforcing query interface. Execute() REJECTS any SP query the
/// SSDL description does not support — exactly like a real web form that
/// has no field for the condition you want — which is how the test suite
/// validates the paper's guarantee (1): plans emitted by the planners are
/// always accepted.
///
/// Beyond capability rejection, a Source can be configured with a
/// FaultPolicy that models the failure modes of a real Internet endpoint:
/// transient kUnavailable errors, stuck calls that burn a timeout and return
/// kDeadlineExceeded, slow calls, and hard outage windows. The schedule is
/// deterministic from the policy seed (see FaultInjector), which is what
/// lets the fault tests and the fault-sweep bench script outages exactly.
///
/// Execute() is thread-safe and almost lock-free: the capability check is
/// guarded by the Checker's own shared-mutex memo (PR 2), statistics are
/// atomic counters, and the table scan runs unlocked (tables are immutable
/// once registered), so concurrent queries from parallel plan children or
/// multiple mediator clients overlap on the expensive parts.
class Source {
 public:
  /// Both pointers must outlive the Source. `description` should be the
  /// same (commutativity-closed) description the planner used; enforcement
  /// against the closed description models the mediator's query "fixing"
  /// step of Section 6.1 (see DESIGN.md).
  Source(const Table* table, const SourceDescription* description)
      : table_(table), description_(description), checker_(description) {}

  const Table& table() const { return *table_; }
  const SourceDescription& description() const { return *description_; }

  /// The internal enforcement Checker (internally synchronized). Exposed so
  /// the catalog can wire the shared cross-query Check memo into the
  /// enforcement path during registration, like the rest of source
  /// configuration.
  Checker* checker() { return &checker_; }
  const Checker* checker() const { return &checker_; }

  /// Executes SP(cond, attrs, R) with set semantics; kUnsupported if the
  /// description does not accept the query; kUnavailable/kDeadlineExceeded
  /// when the configured fault policy injects a failure.
  ///
  /// When the description carries a result bound, the response is SILENTLY
  /// truncated to the first bound rows (in the source's canonical order) —
  /// exactly what a top-k web form does to a caller that ignores the "more
  /// results" banner. Callers that must notice use ExecutePage.
  Result<RowSet> Execute(const ConditionNode& cond, const AttributeSet& attrs);

  /// The paged form: serves the slice of the full answer starting at
  /// `request.offset` in the source's canonical order (Value-lexicographic,
  /// deterministic across calls and retries — the table is immutable), at
  /// most one bound/page worth of rows, and reports via `info` whether rows
  /// were withheld and where the next page starts. Unbounded sources answer
  /// fully at offset 0 and reject offset > 0; bounded but non-paging
  /// sources likewise reject offset > 0 (kUnsupported — a form with no
  /// "next page" link). Each call re-runs fault injection, the capability
  /// check, latency, and the scan: a page fetch is a full round trip.
  Result<RowSet> ExecutePage(const ConditionNode& cond,
                             const AttributeSet& attrs,
                             const PageRequest& request, PageInfo* info);

  /// The outcome of admitting one call, decided before the wire wait. The
  /// async executor uses the split protocol — BeginCall, then a timer for
  /// `delay`, then FinishCall — so one thread can hold many calls "on the
  /// wire" at once; ExecutePage is exactly BeginCall + sleep + FinishCall.
  struct SourceCall {
    /// Wire wait the caller must serve before FinishCall (simulated round
    /// trip plus any injected slow/stuck penalty; zero for fast failures
    /// and capability rejections, which never reach the wire).
    std::chrono::microseconds delay{0};
    StatusCode fail_code = StatusCode::kOk;  ///< injected failure, if any
    const char* fail_reason = "";
    bool rejected = false;         ///< capability rejection (kUnsupported)
    bool paging_rejected = false;  ///< offset > 0 on a non-paging source
  };

  /// Phase 1 of a call: counts the query, draws the fault schedule, runs the
  /// capability and paging checks, computes the wire delay, and raises the
  /// in-flight gauge. Every BeginCall MUST be paired with exactly one
  /// FinishCall (even on the failure paths — FinishCall materializes the
  /// error), or the gauge leaks.
  SourceCall BeginCall(const ConditionNode& cond, const AttributeSet& attrs,
                       const PageRequest& request = {});

  /// Phase 2, after the caller served `call.delay`: materializes the
  /// injected failure / rejection as a Status, or runs the scan and the
  /// bounded-page slice, and drops the in-flight gauge.
  Result<RowSet> FinishCall(const ConditionNode& cond,
                            const AttributeSet& attrs,
                            const PageRequest& request, const SourceCall& call,
                            PageInfo* info);

  /// Per-query latency injected at the start of every Execute() call,
  /// modelling the Internet round trip the paper's k1 stands for. Threads
  /// sleep concurrently, so parallel dispatch collapses the wall-clock cost
  /// of independent sub-queries. Default: no delay (unit tests stay fast).
  void set_simulated_latency(std::chrono::microseconds latency) {
    simulated_latency_us_.store(latency.count(), std::memory_order_relaxed);
  }
  std::chrono::microseconds simulated_latency() const {
    return std::chrono::microseconds(
        simulated_latency_us_.load(std::memory_order_relaxed));
  }

  /// Batch width of the scan data plane: 0 (default) scans row-at-a-time —
  /// the reference path, bit-identical results — and any positive width
  /// evaluates the condition as vectorized kernels over column batches and
  /// ships results through the columnar wire encoding. Configure at
  /// registration, before traffic (like faults and latency).
  void set_batch_width(size_t width) {
    batch_width_.store(width, std::memory_order_relaxed);
  }
  size_t batch_width() const {
    return batch_width_.load(std::memory_order_relaxed);
  }

  /// Installs the fault model (an inactive policy still installs an
  /// injector, so tests can script FailNextN without random rates). Not
  /// thread-safe against in-flight Execute() calls: configure faults before
  /// starting concurrent traffic, like registration itself.
  void set_fault_policy(const FaultPolicy& policy) {
    fault_injector_ = std::make_unique<FaultInjector>(policy);
  }

  /// The live injector (null until set_fault_policy): tests use it to script
  /// `FailNextN` mid-run and to read injection counters.
  FaultInjector* fault_injector() { return fault_injector_.get(); }
  const FaultInjector* fault_injector() const { return fault_injector_.get(); }

  struct Stats {
    size_t queries_received = 0;
    size_t queries_answered = 0;
    size_t queries_rejected = 0;     ///< capability rejections (kUnsupported)
    size_t queries_unavailable = 0;  ///< injected kUnavailable / kDeadline
    uint64_t rows_returned = 0;
    uint64_t wire_bytes = 0;  ///< columnar transfer bytes (batch mode only)
    uint64_t pages_served = 0;         ///< bounded responses (each is a page)
    uint64_t truncated_responses = 0;  ///< responses that withheld rows
    uint64_t inflight = 0;       ///< calls currently on the wire
    uint64_t peak_inflight = 0;  ///< high-water mark of the in-flight gauge
  };
  /// A snapshot of the atomic counters (consistent enough for tests and
  /// observability; individual counters never tear).
  Stats stats() const {
    Stats s;
    s.queries_received = queries_received_.load(std::memory_order_relaxed);
    s.queries_answered = queries_answered_.load(std::memory_order_relaxed);
    s.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
    s.queries_unavailable =
        queries_unavailable_.load(std::memory_order_relaxed);
    s.rows_returned = rows_returned_.load(std::memory_order_relaxed);
    s.wire_bytes = wire_bytes_.load(std::memory_order_relaxed);
    s.pages_served = pages_served_.load(std::memory_order_relaxed);
    s.truncated_responses =
        truncated_responses_.load(std::memory_order_relaxed);
    s.inflight = inflight_.load(std::memory_order_relaxed);
    s.peak_inflight = peak_inflight_.load(std::memory_order_relaxed);
    return s;
  }

  /// Calls between BeginCall and FinishCall right now, and the high-water
  /// mark since the last reset. The bench's "outstanding sub-queries" metric:
  /// under the thread-per-fetch executor the peak is capped by pool threads;
  /// under the event loop it is capped only by the in-flight limiter.
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  uint64_t peak_inflight() const {
    return peak_inflight_.load(std::memory_order_relaxed);
  }
  void ResetStats() {
    queries_received_.store(0, std::memory_order_relaxed);
    queries_answered_.store(0, std::memory_order_relaxed);
    queries_rejected_.store(0, std::memory_order_relaxed);
    queries_unavailable_.store(0, std::memory_order_relaxed);
    rows_returned_.store(0, std::memory_order_relaxed);
    wire_bytes_.store(0, std::memory_order_relaxed);
    pages_served_.store(0, std::memory_order_relaxed);
    truncated_responses_.store(0, std::memory_order_relaxed);
    peak_inflight_.store(inflight_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
  }

 private:
  const Table* table_;
  const SourceDescription* description_;
  Checker checker_;  // internally synchronized (shared-mutex memo)
  std::unique_ptr<FaultInjector> fault_injector_;
  std::atomic<int64_t> simulated_latency_us_{0};
  std::atomic<size_t> batch_width_{0};
  std::atomic<size_t> queries_received_{0};
  std::atomic<size_t> queries_answered_{0};
  std::atomic<size_t> queries_rejected_{0};
  std::atomic<size_t> queries_unavailable_{0};
  std::atomic<uint64_t> rows_returned_{0};
  std::atomic<uint64_t> wire_bytes_{0};
  std::atomic<uint64_t> pages_served_{0};
  std::atomic<uint64_t> truncated_responses_{0};
  std::atomic<uint64_t> inflight_{0};
  std::atomic<uint64_t> peak_inflight_{0};
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_SOURCE_H_
