#ifndef GENCOMPACT_EXEC_EXECUTOR_H_
#define GENCOMPACT_EXEC_EXECUTOR_H_

#include "exec/source.h"
#include "plan/plan.h"

namespace gencompact {

/// Per-execution transfer statistics — the "true cost" counterpart of the
/// estimate-based CostModel, used by the cost-model-validation experiment
/// (E7) and the motivating-example benchmark (E1).
struct ExecStats {
  size_t source_queries = 0;
  uint64_t rows_transferred = 0;  ///< rows shipped from the source

  /// Equation-1 cost with the actual row counts.
  double TrueCost(double k1, double k2) const {
    return k1 * static_cast<double>(source_queries) +
           k2 * static_cast<double>(rows_transferred);
  }
};

/// Executes resolved plans against one source, performing the mediator
/// postprocessing operations (selection, projection, union, intersection —
/// Section 3) with set semantics.
class Executor {
 public:
  /// `source` must outlive the executor.
  explicit Executor(Source* source) : source_(source) {}

  /// Runs `plan`; kUnsupported propagates if the source rejects a query
  /// (only possible for plans produced by non-capability-aware baselines).
  Result<RowSet> Execute(const PlanNode& plan);

  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ExecStats(); }

 private:
  Source* source_;
  ExecStats stats_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_EXECUTOR_H_
