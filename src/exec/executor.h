#ifndef GENCOMPACT_EXEC_EXECUTOR_H_
#define GENCOMPACT_EXEC_EXECUTOR_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/thread_pool.h"
#include "exec/source.h"
#include "plan/plan.h"
#include "plan/sub_query_key.h"

namespace gencompact {

/// Per-execution transfer statistics — the "true cost" counterpart of the
/// estimate-based CostModel, used by the cost-model-validation experiment
/// (E7) and the motivating-example benchmark (E1). Counts are per *distinct*
/// source query: identical SP(C, A, R) sub-queries within one plan are
/// fetched once (see Executor), matching what a deduplicating mediator would
/// actually pay.
struct ExecStats {
  size_t source_queries = 0;
  uint64_t rows_transferred = 0;  ///< rows shipped from the source

  /// Equation-1 cost with the actual row counts.
  double TrueCost(double k1, double k2) const {
    return k1 * static_cast<double>(source_queries) +
           k2 * static_cast<double>(rows_transferred);
  }
};

/// Executes resolved plans against one source, performing the mediator
/// postprocessing operations (selection, projection, union, intersection —
/// Section 3) with set semantics.
///
/// When a ThreadPool is supplied, the independent children of Union and
/// Intersection nodes (IPG's set-cover combinations) are dispatched as
/// parallel tasks; plans are immutable so sharing them across tasks is safe,
/// and a per-execution deduplication map guarantees each distinct
/// SP(C, A, R) is sent to the source exactly once even when several parallel
/// branches request it simultaneously. Results are bit-identical to
/// sequential execution: set union/intersection are order-insensitive and
/// children are combined in plan order.
class Executor {
 public:
  /// `source` must outlive the executor; `pool` may be null (sequential).
  explicit Executor(Source* source, ThreadPool* pool = nullptr)
      : source_(source), pool_(pool) {}

  /// Runs `plan`; kUnsupported propagates if the source rejects a query
  /// (only possible for plans produced by non-capability-aware baselines).
  Result<RowSet> Execute(const PlanNode& plan);

  /// Snapshot of the transfer counters (by value: they advance atomically
  /// while parallel tasks run).
  ExecStats stats() const {
    ExecStats snapshot;
    snapshot.source_queries = source_queries_.load(std::memory_order_relaxed);
    snapshot.rows_transferred =
        rows_transferred_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetStats() {
    source_queries_.store(0, std::memory_order_relaxed);
    rows_transferred_.store(0, std::memory_order_relaxed);
  }

 private:
  /// One deduplicated source fetch; losers of the insertion race block on
  /// the winner's shared_future instead of re-querying the source.
  struct Fetch {
    std::promise<void> ready_promise;
    std::shared_future<void> ready = ready_promise.get_future().share();
    Result<RowSet> result = Status::Internal("fetch not completed");
  };

  Result<RowSet> Exec(const PlanNode& plan);
  Result<RowSet> ExecSourceQuery(const PlanNode& plan);
  Result<RowSet> ExecSetOp(const PlanNode& plan);

  Source* source_;
  ThreadPool* pool_;
  std::atomic<uint64_t> source_queries_{0};
  std::atomic<uint64_t> rows_transferred_{0};
  std::mutex fetch_mu_;  // guards fetches_ (map structure only)
  // Keyed by the POD (condition id, projection bits) pair: dedup on the
  // execution hot path costs two field loads, not a string concatenation.
  std::unordered_map<SubQueryKey, std::shared_ptr<Fetch>, SubQueryKeyHash>
      fetches_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_EXECUTOR_H_
