#ifndef GENCOMPACT_EXEC_EXECUTOR_H_
#define GENCOMPACT_EXEC_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/thread_pool.h"
#include "exec/circuit_breaker.h"
#include "exec/latency_tracker.h"
#include "exec/retry_policy.h"
#include "exec/source.h"
#include "plan/plan.h"
#include "plan/sub_query_key.h"

namespace gencompact {

/// Per-execution transfer statistics — the "true cost" counterpart of the
/// estimate-based CostModel, used by the cost-model-validation experiment
/// (E7) and the motivating-example benchmark (E1). Counts are per *distinct*
/// source query: identical SP(C, A, R) sub-queries within one plan are
/// fetched once (see Executor), matching what a deduplicating mediator would
/// actually pay.
struct ExecStats {
  size_t source_queries = 0;
  uint64_t rows_transferred = 0;  ///< rows shipped from the source

  // Fault-tolerance counters (all zero when no faults occur and retries are
  // disabled, so the zero-fault path is indistinguishable from before).
  uint64_t retries = 0;              ///< re-attempts after retryable failures
  uint64_t failed_sub_queries = 0;   ///< sub-queries that failed after retries
  uint64_t breaker_rejections = 0;   ///< attempts refused by an open breaker
  uint64_t deadlines_exceeded = 0;   ///< sub-queries that blew their deadline
  uint64_t dropped_branches = 0;     ///< ∨-branches degraded away (partial answer)

  // Hedged-request counters (zero unless ExecOptions::hedge fires).
  uint64_t hedges_launched = 0;   ///< backup attempts raced past the digest quantile
  uint64_t hedges_won = 0;        ///< hedges whose success was adopted as the answer
  uint64_t hedges_cancelled = 0;  ///< primaries cancelled before ever starting

  // Result-bounded-source counters (zero unless a source declares a bound).
  uint64_t pages_fetched = 0;         ///< bounded responses consumed
  uint64_t truncated_sub_queries = 0; ///< sub-queries answered incompletely

  /// Equation-1 cost with the actual row counts.
  double TrueCost(double k1, double k2) const {
    return k1 * static_cast<double>(source_queries) +
           k2 * static_cast<double>(rows_transferred);
  }
};

/// Fault-tolerance configuration of one Executor. Default-constructed, the
/// executor behaves exactly like the pre-fault-tolerance one: no retries, no
/// breaker, errors propagate, and the system clock is never consulted.
struct ExecOptions {
  RetryPolicy retry;

  /// Per-source breaker shared across concurrent executions (owned by the
  /// catalog entry / caller); may be null.
  CircuitBreaker* breaker = nullptr;

  /// Time source for backoff sleeps and deadlines; null = Clock::Real().
  Clock* clock = nullptr;

  /// Absolute query-level deadline (on `clock`'s timeline); the zero
  /// time_point means none. Unlike RetryPolicy::sub_query_deadline — a
  /// per-fetch budget measured from each fetch's own start — this is one
  /// wall-clock point every fetch in the execution shares: a fetch whose
  /// deadline has already passed fails fast without contacting the source,
  /// and a backoff sleep that would overshoot it is never scheduled (the
  /// sleep used to hold a pool thread past the point any answer mattered).
  std::chrono::steady_clock::time_point deadline{};

  /// Graceful degradation: a Union child that fails with a *retryable*
  /// status (after retries) is dropped from the answer instead of failing
  /// the plan, and recorded in dropped_sub_queries(). ∧/∩ branches and
  /// non-retryable errors still fail the plan.
  bool degrade_unions = false;

  /// Per-source latency digest shared across executions (owned by the
  /// catalog entry / caller); may be null. When set, the duration of every
  /// successful source call is recorded — hedging and the breaker-aware
  /// cost penalty read it.
  LatencyTracker* latency = nullptr;

  /// Hedged requests (see HedgePolicy in latency_tracker.h). Only effective
  /// with a `latency` digest and a ThreadPool.
  HedgePolicy hedge;

  /// Partial paging prefixes: when a bounded source's paging loop fails
  /// retryably *after* at least one page landed (breaker trip, retry-budget
  /// exhaustion, persistent transient), keep the pages already fetched as a
  /// truncated partial answer — recorded in truncation_records() — instead
  /// of failing the sub-query. Off (default): a mid-loop failure fails the
  /// whole sub-query, exactly like an unbounded fetch.
  bool partial_pages = false;

  /// Batch width of the mediator-side data plane. 0 (default): the
  /// row-at-a-time reference path — per-row evaluation for mediator SPs and
  /// copying UnionOf/IntersectOf combines, bit-identical to the original
  /// executor. > 0: mediator SPs run the vectorized batch path (transpose +
  /// compiled kernels, see exec/scan.h) and set operations combine by
  /// in-place merge/intersect without copying rows.
  size_t batch_width = 0;
};

/// One sub-query whose answer provably misses rows: a result-bounded source
/// stopped shipping before exhaustion. The recovered rows are a *lower
/// bound* on the true answer (pages are disjoint slices of it), which is
/// exactly what the completeness marker on a partial answer must say.
struct TruncationRecord {
  SubQueryKey key;                ///< identity, for avoid-set re-planning
  std::string source;             ///< the bounded source's name
  std::string sub_query;          ///< human-readable SP(C, A, R) rendering
  uint64_t bound = 0;             ///< the result bound that was hit
  uint64_t rows_lower_bound = 0;  ///< rows recovered before the cut
  std::string reason;             ///< why the loop stopped (bound/limit/fault)
};

/// Executes resolved plans against one source, performing the mediator
/// postprocessing operations (selection, projection, union, intersection —
/// Section 3) with set semantics.
///
/// When a ThreadPool is supplied, the independent children of Union and
/// Intersection nodes (IPG's set-cover combinations) are dispatched as
/// parallel tasks; plans are immutable so sharing them across tasks is safe,
/// and a per-execution deduplication map guarantees each distinct
/// SP(C, A, R) is sent to the source exactly once even when several parallel
/// branches request it simultaneously. Results are bit-identical to
/// sequential execution: set union/intersection are order-insensitive and
/// children are combined in plan order.
///
/// With ExecOptions, source fetches additionally run under the configured
/// retry/backoff/deadline discipline and per-source circuit breaker, and
/// Union children may degrade instead of failing (see ExecOptions). A fetch
/// that ultimately fails is *evicted* from the dedup map, and duplicates
/// that joined the doomed fetch observe the eviction and re-fetch, so a
/// transient failure is never inherited within one execution.
///
/// With ExecOptions::hedge enabled, a fetch that outlives the source's
/// digest-estimated tail latency is raced against a second attempt; the
/// first success wins and the loser is cancelled (if still queued) or
/// discarded (if running) without ever touching the dedup map.
class Executor {
 public:
  /// `source` must outlive the executor; `pool` may be null (sequential).
  explicit Executor(Source* source, ThreadPool* pool = nullptr,
                    ExecOptions options = {})
      : source_(source),
        pool_(pool),
        options_(options),
        clock_(options.clock != nullptr ? options.clock : Clock::Real()) {}

  /// Runs `plan`; kUnsupported propagates if the source rejects a query
  /// (only possible for plans produced by non-capability-aware baselines);
  /// kUnavailable/kDeadlineExceeded propagate when faults exhaust the retry
  /// discipline (unless degraded away, see ExecOptions::degrade_unions).
  Result<RowSet> Execute(const PlanNode& plan);

  /// Snapshot of the transfer counters (by value: they advance atomically
  /// while parallel tasks run).
  ExecStats stats() const {
    ExecStats snapshot;
    snapshot.source_queries = source_queries_.load(std::memory_order_relaxed);
    snapshot.rows_transferred =
        rows_transferred_.load(std::memory_order_relaxed);
    snapshot.retries = retries_.load(std::memory_order_relaxed);
    snapshot.failed_sub_queries =
        failed_sub_queries_.load(std::memory_order_relaxed);
    snapshot.breaker_rejections =
        breaker_rejections_.load(std::memory_order_relaxed);
    snapshot.deadlines_exceeded =
        deadlines_exceeded_.load(std::memory_order_relaxed);
    snapshot.dropped_branches =
        dropped_branches_.load(std::memory_order_relaxed);
    snapshot.hedges_launched =
        hedges_launched_.load(std::memory_order_relaxed);
    snapshot.hedges_won = hedges_won_.load(std::memory_order_relaxed);
    snapshot.hedges_cancelled =
        hedges_cancelled_.load(std::memory_order_relaxed);
    snapshot.pages_fetched = pages_fetched_.load(std::memory_order_relaxed);
    snapshot.truncated_sub_queries =
        truncated_sub_queries_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetStats() {
    source_queries_.store(0, std::memory_order_relaxed);
    rows_transferred_.store(0, std::memory_order_relaxed);
    retries_.store(0, std::memory_order_relaxed);
    failed_sub_queries_.store(0, std::memory_order_relaxed);
    breaker_rejections_.store(0, std::memory_order_relaxed);
    deadlines_exceeded_.store(0, std::memory_order_relaxed);
    dropped_branches_.store(0, std::memory_order_relaxed);
    hedges_launched_.store(0, std::memory_order_relaxed);
    hedges_won_.store(0, std::memory_order_relaxed);
    hedges_cancelled_.store(0, std::memory_order_relaxed);
    pages_fetched_.store(0, std::memory_order_relaxed);
    truncated_sub_queries_.store(0, std::memory_order_relaxed);
  }

  /// Human-readable descriptions of the ∨-branches dropped by the last
  /// Execute() (empty unless degrade_unions fired) — the completeness
  /// annotation of a partial answer.
  std::vector<std::string> dropped_sub_queries() const {
    std::lock_guard<std::mutex> lock(degrade_mu_);
    return dropped_;
  }

  /// Identities of the sub-queries that failed with a retryable status in
  /// the last Execute() — the avoid-set for re-planning around them.
  std::vector<SubQueryKey> failed_sub_query_keys() const {
    std::lock_guard<std::mutex> lock(degrade_mu_);
    return failed_keys_;
  }

  /// Sub-queries whose answers are provably incomplete in the last
  /// Execute() — a result-bounded source stopped before exhaustion (no
  /// paging, access limit, or a tolerated mid-loop failure). Empty for
  /// unbounded sources and whenever every paging loop ran to exhaustion.
  std::vector<TruncationRecord> truncation_records() const {
    std::lock_guard<std::mutex> lock(degrade_mu_);
    return truncated_;
  }

 private:
  /// One deduplicated source fetch; losers of the insertion race block on
  /// the winner's shared_future instead of re-querying the source.
  struct Fetch {
    std::promise<void> ready_promise;
    std::shared_future<void> ready = ready_promise.get_future().share();
    Result<RowSet> result = Status::Internal("fetch not completed");
  };

  /// Everything one physical fetch needs, self-contained by design: a
  /// hedged primary runs as a pool task that can outlive the Execute() call
  /// and the Executor itself (a winner does not wait for a running loser),
  /// so the job owns its inputs (ConditionPtr pin, AttributeSet copy,
  /// shared budget) and points at catalog-lifetime collaborators only.
  /// Counters accumulate here and are folded into the executor's stats by
  /// the thread that owns the race; a running loser's late increments after
  /// the fold are dropped, never corrupted.
  struct FetchJob {
    Source* source = nullptr;
    CircuitBreaker* breaker = nullptr;
    Clock* clock = nullptr;
    LatencyTracker* latency = nullptr;
    RetryPolicy retry;
    std::chrono::steady_clock::time_point deadline{};  ///< zero = none
    std::shared_ptr<std::atomic<size_t>> budget;
    ConditionPtr condition;
    AttributeSet attrs;
    SubQueryKey key;

    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> breaker_rejections{0};
    std::atomic<uint64_t> deadlines_exceeded{0};

    // Hedge race state (untouched by the inline non-hedged path).
    std::mutex mu;
    std::condition_variable cv;
    bool primary_done = false;
    Result<RowSet> primary_result = Status::Internal("primary not completed");
    /// 0 = unclaimed, 1 = claimed by the race owner (cancelled, or run
    /// inline for guaranteed progress), 2 = claimed by the pool task. The
    /// claim makes "cancel a queued loser" a single CAS.
    std::atomic<int> primary_claim{0};
    /// Set by the owner when the hedge already won: a still-running loser
    /// stops retrying instead of burning budget on an abandoned fetch.
    std::atomic<bool> abandoned{false};
  };

  Result<RowSet> Exec(const PlanNode& plan);
  Result<RowSet> ExecSourceQuery(const PlanNode& plan);
  Result<RowSet> ExecSetOp(const PlanNode& plan);

  /// One logical fetch: the plain retry loop, or the hedged race when the
  /// policy arms (digest warm, pool available). Result-bounded sources take
  /// the paging loop instead (and never hedge: a bounded fetch is an ordered
  /// multi-call conversation, not a single race-able round trip).
  Result<RowSet> FetchResolving(const PlanNode& plan, const SubQueryKey& key);
  Result<RowSet> FetchHedged(const std::shared_ptr<FetchJob>& job,
                             std::chrono::microseconds delay);

  /// The paging loop for a result-bounded source: drives page offsets until
  /// the source reports exhaustion (exact answer), the interface runs out
  /// of pages/accesses, or a tolerated mid-loop failure cuts it short (both
  /// partial — recorded in truncation_records()). Every page runs under the
  /// full retry/breaker/deadline discipline at its own offset, so a retried
  /// page resumes exactly where the failed attempt would have read.
  Result<RowSet> FetchPaged(const PlanNode& plan, const SubQueryKey& key);

  void InitJob(FetchJob* job, const PlanNode& plan,
               const SubQueryKey& key) const;
  void FoldJobCounters(const FetchJob& job);

  /// The retry/breaker/deadline loop around one physical source fetch.
  /// Static: runs identically on the owner thread and on a detached task.
  /// The paged form retries the page at `offset` until it lands or the
  /// discipline gives up; the plain form is the offset-0 page of an
  /// unbounded source (identical behaviour to before bounds existed).
  static Result<RowSet> RunRetryLoop(FetchJob* job);
  static Result<RowSet> RunPageRetryLoop(FetchJob* job, uint64_t offset,
                                         PageInfo* info);

  /// One breaker-gated speculative call — a hedge is a bet that a second
  /// sample beats the primary's tail, not a second retry discipline.
  static Result<RowSet> RunHedgeAttempt(FetchJob* job);

  static bool TryConsumeToken(std::atomic<size_t>* budget) {
    size_t left = budget->load(std::memory_order_relaxed);
    while (left > 0) {
      if (budget->compare_exchange_weak(left, left - 1,
                                        std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }
  bool TryConsumeRetryToken() { return TryConsumeToken(budget_.get()); }

  Source* source_;
  ThreadPool* pool_;
  ExecOptions options_;
  Clock* clock_;
  std::atomic<uint64_t> source_queries_{0};
  std::atomic<uint64_t> rows_transferred_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> failed_sub_queries_{0};
  std::atomic<uint64_t> breaker_rejections_{0};
  std::atomic<uint64_t> deadlines_exceeded_{0};
  std::atomic<uint64_t> dropped_branches_{0};
  std::atomic<uint64_t> hedges_launched_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> hedges_cancelled_{0};
  std::atomic<uint64_t> pages_fetched_{0};
  std::atomic<uint64_t> truncated_sub_queries_{0};
  // Heap-shared so a detached hedge loser can keep drawing (and failing to
  // draw) tokens safely even if the Executor is gone; reset per execution.
  std::shared_ptr<std::atomic<size_t>> budget_ =
      std::make_shared<std::atomic<size_t>>(0);
  std::mutex fetch_mu_;  // guards fetches_ (map structure only)
  // Keyed by the POD (condition id, projection bits) pair: dedup on the
  // execution hot path costs two field loads, not a string concatenation.
  std::unordered_map<SubQueryKey, std::shared_ptr<Fetch>, SubQueryKeyHash>
      fetches_;
  mutable std::mutex degrade_mu_;  // guards dropped_, failed_keys_, truncated_
  std::vector<std::string> dropped_;
  std::vector<SubQueryKey> failed_keys_;
  std::vector<TruncationRecord> truncated_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_EXECUTOR_H_
