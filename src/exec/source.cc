#include "exec/source.h"

#include <thread>

#include "exec/scan.h"

namespace gencompact {

Result<RowSet> Source::Execute(const ConditionNode& cond,
                               const AttributeSet& attrs) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);

  std::chrono::microseconds latency = simulated_latency();

  // Fault injection happens before the capability check: a dead or flaky
  // network fails the round trip whether or not the form could have answered.
  if (fault_injector_ != nullptr) {
    const FaultInjector::Decision decision = fault_injector_->NextCall();
    latency += decision.extra_latency;
    if (decision.code != StatusCode::kOk) {
      // A stuck call burns its timeout before failing; a fast failure does
      // not sleep at all (extra_latency is zero for those).
      if (latency.count() > 0 && decision.extra_latency.count() > 0) {
        std::this_thread::sleep_for(latency);
      }
      queries_unavailable_.fetch_add(1, std::memory_order_relaxed);
      const std::string message = "source '" + description_->source_name() +
                                  "' " + decision.reason + " on SP(" +
                                  cond.ToString() + ")";
      return decision.code == StatusCode::kDeadlineExceeded
                 ? Status::DeadlineExceeded(message)
                 : Status::Unavailable(message);
    }
  }

  // The capability check needs no Source-level lock: the Checker memo is
  // internally synchronized (shared-lock reads, PR 2), so concurrent checks
  // against one source no longer serialize here.
  if (!checker_.Supports(cond, attrs)) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unsupported("source '" + description_->source_name() +
                               "' rejects query: SP(" + cond.ToString() +
                               ", " + attrs.ToString(table_->schema()) + ")");
  }

  // The round trip happens with no lock held: concurrent queries wait in
  // parallel, exactly like independent HTTP requests.
  if (latency.count() > 0) std::this_thread::sleep_for(latency);

  // The scan itself: row-at-a-time at batch_width 0 (the reference path),
  // vectorized batches + columnar wire transfer otherwise. Either way the
  // condition compiles once per scan — no per-row schema lookups.
  ScanOptions scan_options;
  scan_options.batch_width = batch_width_.load(std::memory_order_relaxed);
  scan_options.wire_encode = scan_options.batch_width > 0;
  ScanMetrics scan_metrics;
  GC_ASSIGN_OR_RETURN(RowSet result,
                      ScanTable(*table_, cond, attrs, scan_options,
                                &scan_metrics));
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  rows_returned_.fetch_add(result.size(), std::memory_order_relaxed);
  wire_bytes_.fetch_add(scan_metrics.wire_bytes, std::memory_order_relaxed);
  return result;
}

}  // namespace gencompact
