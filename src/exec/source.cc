#include "exec/source.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "exec/scan.h"

namespace gencompact {

Result<RowSet> Source::Execute(const ConditionNode& cond,
                               const AttributeSet& attrs) {
  // Offset 0 of the paged protocol IS the plain call; a bounded source
  // silently truncates here (info is dropped), like a real top-k form
  // answering a caller that never looks at the "more results" banner. The
  // executor's paging loop is the caller that does look.
  PageInfo info;
  return ExecutePage(cond, attrs, PageRequest{}, &info);
}

Result<RowSet> Source::ExecutePage(const ConditionNode& cond,
                                   const AttributeSet& attrs,
                                   const PageRequest& request, PageInfo* info) {
  const SourceCall call = BeginCall(cond, attrs, request);
  // The round trip happens with no lock held: concurrent queries wait in
  // parallel, exactly like independent HTTP requests.
  if (call.delay.count() > 0) std::this_thread::sleep_for(call.delay);
  return FinishCall(cond, attrs, request, call, info);
}

Source::SourceCall Source::BeginCall(const ConditionNode& cond,
                                     const AttributeSet& attrs,
                                     const PageRequest& request) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t now =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t peak = peak_inflight_.load(std::memory_order_relaxed);
  while (now > peak && !peak_inflight_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }

  SourceCall call;
  std::chrono::microseconds latency = simulated_latency();

  // Fault injection happens before the capability check: a dead or flaky
  // network fails the round trip whether or not the form could have answered.
  if (fault_injector_ != nullptr) {
    const FaultInjector::Decision decision =
        fault_injector_->NextCall(request.offset, request.fingerprint);
    latency += decision.extra_latency;
    if (decision.code != StatusCode::kOk) {
      queries_unavailable_.fetch_add(1, std::memory_order_relaxed);
      call.fail_code = decision.code;
      call.fail_reason = decision.reason;
      // A stuck call burns its timeout before failing; a fast failure does
      // not wait at all (extra_latency is zero for those).
      if (decision.extra_latency.count() > 0) call.delay = latency;
      return call;
    }
  }

  // The capability check needs no Source-level lock: the Checker memo is
  // internally synchronized (shared-lock reads, PR 2), so concurrent checks
  // against one source no longer serialize here.
  if (!checker_.Supports(cond, attrs)) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    call.rejected = true;
    return call;
  }

  const ResultBound& bound = description_->result_bound();
  if (request.offset > 0 && (!bound.bounded() || !bound.supports_paging)) {
    // A form with no "next page" link: there is nothing to request past
    // offset 0. Non-retryable, like any other interface violation.
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    call.paging_rejected = true;
    return call;
  }

  call.delay = latency;
  return call;
}

Result<RowSet> Source::FinishCall(const ConditionNode& cond,
                                  const AttributeSet& attrs,
                                  const PageRequest& request,
                                  const SourceCall& call, PageInfo* info) {
  inflight_.fetch_sub(1, std::memory_order_relaxed);

  if (call.fail_code != StatusCode::kOk) {
    const std::string message = "source '" + description_->source_name() +
                                "' " + call.fail_reason + " on SP(" +
                                cond.ToString() + ")";
    return call.fail_code == StatusCode::kDeadlineExceeded
               ? Status::DeadlineExceeded(message)
               : Status::Unavailable(message);
  }
  if (call.rejected) {
    return Status::Unsupported("source '" + description_->source_name() +
                               "' rejects query: SP(" + cond.ToString() +
                               ", " + attrs.ToString(table_->schema()) + ")");
  }
  if (call.paging_rejected) {
    return Status::Unsupported("source '" + description_->source_name() +
                               "' does not support paging (offset " +
                               std::to_string(request.offset) + ")");
  }

  // The scan itself: row-at-a-time at batch_width 0 (the reference path),
  // vectorized batches + columnar wire transfer otherwise. Either way the
  // condition compiles once per scan — no per-row schema lookups.
  //
  // Wire bypass: an unconditioned full download from a local table skips
  // the encode/decode round trip — there is no selective transfer to win,
  // every row ships anyway, so GCWF only added CPU (the documented ~0.5x
  // regression on download-all in BENCH_scan.json).
  ScanOptions scan_options;
  scan_options.batch_width = batch_width_.load(std::memory_order_relaxed);
  scan_options.wire_encode = scan_options.batch_width > 0 && !cond.is_true();
  ScanMetrics scan_metrics;
  GC_ASSIGN_OR_RETURN(RowSet result,
                      ScanTable(*table_, cond, attrs, scan_options,
                                &scan_metrics));
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  wire_bytes_.fetch_add(scan_metrics.wire_bytes, std::memory_order_relaxed);

  const ResultBound& bound = description_->result_bound();
  if (!bound.bounded()) {
    info->bounded = false;
    info->rows = result.size();
    info->next_offset = result.size();
    info->has_more = false;
    rows_returned_.fetch_add(result.size(), std::memory_order_relaxed);
    return result;
  }

  // Bounded response: ship the page [offset, offset + page_size) of the
  // answer in canonical (Value-lexicographic) order. The order is a pure
  // function of the immutable table and the condition, so a retried page
  // request resumes at exactly the rows the failed attempt would have
  // shipped — no duplicates, no gaps.
  const uint64_t page_size = bound.EffectivePageSize();
  const std::vector<Row> sorted = result.SortedRows();
  const uint64_t total = sorted.size();
  const uint64_t begin = std::min<uint64_t>(request.offset, total);
  const uint64_t end = std::min<uint64_t>(begin + page_size, total);
  RowSet page(result.layout());
  for (uint64_t i = begin; i < end; ++i) page.Insert(sorted[i]);

  info->bounded = true;
  info->rows = end - begin;
  info->next_offset = end;
  info->has_more = end < total;
  pages_served_.fetch_add(1, std::memory_order_relaxed);
  if (info->has_more) {
    truncated_responses_.fetch_add(1, std::memory_order_relaxed);
  }
  rows_returned_.fetch_add(page.size(), std::memory_order_relaxed);
  return page;
}

}  // namespace gencompact
