#include "exec/source.h"

#include <thread>

#include "expr/condition_eval.h"

namespace gencompact {

Result<RowSet> Source::Execute(const ConditionNode& cond,
                               const AttributeSet& attrs) {
  std::chrono::microseconds latency{0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    latency = simulated_latency_;
    ++stats_.queries_received;
    if (!checker_.Supports(cond, attrs)) {
      ++stats_.queries_rejected;
      return Status::Unsupported("source '" + description_->source_name() +
                                 "' rejects query: SP(" + cond.ToString() +
                                 ", " + attrs.ToString(table_->schema()) + ")");
    }
  }
  // The round trip happens outside the lock: concurrent queries wait in
  // parallel, exactly like independent HTTP requests.
  if (latency.count() > 0) std::this_thread::sleep_for(latency);

  const Schema& schema = table_->schema();
  const RowLayout full = table_->FullLayout();
  const RowLayout projected(attrs, schema.num_attributes());
  RowSet result(projected);
  for (const Row& row : table_->rows()) {
    GC_ASSIGN_OR_RETURN(const bool matches,
                        EvalCondition(cond, row, full, schema));
    if (matches) result.Insert(full.Project(row, projected));
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries_answered;
  stats_.rows_returned += result.size();
  return result;
}

}  // namespace gencompact
