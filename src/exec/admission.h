#ifndef GENCOMPACT_EXEC_ADMISSION_H_
#define GENCOMPACT_EXEC_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace gencompact {

struct AdmissionOptions {
  bool enabled = false;
  /// Hard cap on backlog (in-flight + queued fetches); 0 = no cap.
  size_t max_pending = 0;
  /// Which observed-latency quantile estimates one round trip (0.5 = median).
  double latency_quantile = 0.5;
  /// How many fetches drain concurrently — the divisor that turns backlog
  /// into expected queueing delay. The mediator defaults this to the
  /// limiter's global cap when left 0.
  size_t drain_width = 0;
};

/// Sheds hopeless queries *before* planning: if the backlog ahead of a query,
/// drained `drain_width` at a time at the observed per-trip latency, cannot
/// finish inside the query's deadline, reject now — planning and queueing it
/// would only burn work that is already doomed and add to everyone else's
/// wait. Complements load shedding (breaker-open sheds) which fires on
/// source *health*; this fires on *queue depth x latency vs deadline*.
///
/// A second, simpler gate works in whole queries rather than fetches:
/// AdmitQuery caps the number of queries the mediator lets into execution at
/// once (`Mediator::Options::max_inflight_queries`), with a bounded waiting
/// allowance past the cap (`admission_queue_limit`) before newcomers shed.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options) : options_(options) {}

  /// `pending` = current backlog (limiter inflight + queued), `est` = one
  /// observed round trip at latency_quantile (0 = no signal yet), `budget` =
  /// the query's deadline (0 = none). OK admits; kUnavailable sheds.
  Status Admit(size_t pending, std::chrono::microseconds est,
               std::chrono::microseconds budget);

  /// Query-count gate: `active` queries are already past admission and not
  /// yet answered. The first `max_inflight` run concurrently; the next
  /// `queue_limit` are tolerated as backlog (they contend at the in-flight
  /// limiter); anything beyond sheds. `max_inflight` 0 = gate disabled.
  Status AdmitQuery(size_t active, size_t max_inflight, size_t queue_limit);

  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }

  const AdmissionOptions& options() const { return options_; }

 private:
  AdmissionOptions options_;
  std::atomic<uint64_t> rejections_{0};
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_ADMISSION_H_
