#include "exec/scan.h"

#include <algorithm>

#include "expr/batch_eval.h"
#include "storage/column_batch.h"
#include "storage/wire_format.h"

namespace gencompact {

namespace {

/// The shared batch pump: filter [0, store.num_rows()) through `evaluator`
/// one batch at a time, hash the survivors column-wise, and keep the first
/// occurrence of every distinct projected tuple. Returns unique row ids in
/// first-occurrence order.
std::vector<uint32_t> FilterAndDedup(const ColumnStore& store,
                                     const CompiledEvaluator& evaluator,
                                     const std::vector<int>& proj_cols,
                                     size_t batch_width) {
  const uint32_t num_rows = static_cast<uint32_t>(store.num_rows());
  BatchDeduper dedup(&store, proj_cols);
  std::vector<uint32_t> unique;
  std::vector<size_t> hashes;
  ColumnBatch batch;
  batch.store = &store;
  for (uint32_t begin = 0; begin < num_rows;
       begin += static_cast<uint32_t>(batch_width)) {
    batch.begin = begin;
    batch.end = static_cast<uint32_t>(
        std::min<size_t>(num_rows, begin + batch_width));
    batch.selection.clear();
    evaluator.FilterBatch(&batch);
    if (batch.selection.empty()) continue;
    store.HashRows(batch.selection, proj_cols, &hashes);
    for (size_t i = 0; i < batch.selection.size(); ++i) {
      if (dedup.AddIfNew(hashes[i], batch.selection[i])) {
        unique.push_back(batch.selection[i]);
      }
    }
  }
  return unique;
}

}  // namespace

Result<RowSet> ScanTable(const Table& table, const ConditionNode& cond,
                         const AttributeSet& attrs, const ScanOptions& options,
                         ScanMetrics* metrics) {
  const Schema& schema = table.schema();
  const RowLayout full = table.FullLayout();
  const RowLayout projected(attrs, schema.num_attributes());
  GC_ASSIGN_OR_RETURN(const CompiledEvaluator evaluator,
                      CompiledEvaluator::Compile(cond, full, schema));

  if (options.batch_width == 0) {
    // Reference row path: compile-once evaluation, otherwise the original
    // row-at-a-time scan (project + set-insert per match).
    RowSet result(projected);
    for (const Row& row : table.rows()) {
      if (evaluator.Matches(row)) result.Insert(full.Project(row, projected));
    }
    return result;
  }

  // Batch path: vectorized kernels over the table's column-major mirror,
  // duplicate elimination on row ids (no Row is materialized for a
  // duplicate), then ship the survivors — through the columnar wire format
  // when this scan models a wrapper transfer.
  const ColumnStore& store = table.columns();
  const std::vector<int> proj_cols = attrs.Indices();
  const std::vector<uint32_t> unique =
      FilterAndDedup(store, evaluator, proj_cols, options.batch_width);

  if (options.wire_encode) {
    const std::string wire =
        EncodeColumnar(store, proj_cols, unique, attrs.bits(),
                       static_cast<uint32_t>(schema.num_attributes()));
    if (metrics != nullptr) metrics->wire_bytes += wire.size();
    return DecodeColumnar(wire);
  }
  RowSet result(projected);
  for (const uint32_t row : unique) {
    result.Insert(store.MaterializeRow(row, proj_cols));
  }
  return result;
}

Result<RowSet> FilterRows(const RowSet& input, const ConditionNode& cond,
                          const AttributeSet& out_attrs, const Schema& schema,
                          size_t batch_width) {
  const RowLayout& in_layout = input.layout();
  const RowLayout out_layout(out_attrs, schema.num_attributes());
  GC_ASSIGN_OR_RETURN(const CompiledEvaluator evaluator,
                      CompiledEvaluator::Compile(cond, in_layout, schema));

  if (batch_width == 0) {
    RowSet result(out_layout);
    for (const Row& row : input.rows()) {
      if (evaluator.Matches(row)) {
        result.Insert(in_layout.Project(row, out_layout));
      }
    }
    return result;
  }

  // Batch path: transpose the intermediate result once (store columns are
  // the input layout's slots), then run the same filter/dedup pump.
  const ColumnStore store = TransposeRowSet(input, schema);
  std::vector<int> proj_slots;
  proj_slots.reserve(out_attrs.size());
  for (const int index : out_attrs.Indices()) {
    proj_slots.push_back(in_layout.SlotOf(index));
  }
  const std::vector<uint32_t> unique =
      FilterAndDedup(store, evaluator, proj_slots, batch_width);
  RowSet result(out_layout);
  for (const uint32_t row : unique) {
    result.Insert(store.MaterializeRow(row, proj_slots));
  }
  return result;
}

}  // namespace gencompact
