#ifndef GENCOMPACT_EXEC_FAULT_POLICY_H_
#define GENCOMPACT_EXEC_FAULT_POLICY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace gencompact {

/// Scriptable fault model for a simulated Internet source. All randomness is
/// a pure function of (seed, per-source call index), so a given policy
/// replays the exact same fault schedule run after run: under a fixed
/// arrival order every decision is reproducible, and under concurrent
/// arrival the *set* of injected faults over N calls is identical even when
/// which thread draws which index varies.
struct FaultPolicy {
  uint64_t seed = 1;

  /// Probability that a call fails fast with kUnavailable (connection reset,
  /// HTTP 503, ...). Drawn independently per call.
  double transient_error_rate = 0.0;

  /// Probability that a call gets "stuck": the source holds the caller for
  /// `stuck_penalty` of simulated wall time and then fails with
  /// kDeadlineExceeded — a client-side timeout on a hung request.
  double stuck_call_rate = 0.0;
  std::chrono::microseconds stuck_penalty{0};

  /// Probability that a call is merely slow: it still answers, after
  /// `slow_latency` extra simulated round-trip time.
  double slow_call_rate = 0.0;
  std::chrono::microseconds slow_latency{0};

  /// Hard outage windows in call-index space: every call whose index lands
  /// in some [begin, end) fails with kUnavailable regardless of the random
  /// rates — a dead server, scheduled in "queries seen" time so tests can
  /// script "down for the next 50 calls" without touching a clock.
  struct Outage {
    uint64_t begin = 0;
    uint64_t end = 0;
  };
  std::vector<Outage> outages;

  /// Page-indexed fault schedule for result-bounded sources: the first
  /// `fail_count` calls that request the page starting at row `offset` fail
  /// fast with kUnavailable, independent of the call index. This is how the
  /// paging tests script "the second page fails once, then succeeds" —
  /// a mid-loop transient whose retry must resume at the same offset.
  struct PageFault {
    uint64_t offset = 0;      ///< page start offset the fault is keyed on
    uint64_t fail_count = 1;  ///< how many requests for this page fail
  };
  std::vector<PageFault> page_faults;

  /// Interleaving-independent draws: each call's random decision becomes a
  /// pure function of (seed, sub-query fingerprint, page offset, per-key
  /// attempt index) instead of the global per-source call index. Two
  /// executors that issue the same *multiset* of calls in different global
  /// orders — the thread-pool path vs the event-loop path — then observe the
  /// exact same fault outcome on every corresponding call, which is what the
  /// async-vs-pool differential fuzzer needs to demand identical retry
  /// statistics, not just identical answers. Only the random rates key this
  /// way; outages and page_faults stay in call-index space (they are
  /// order-dependent scripting constructs by design).
  bool keyed_schedule = false;

  /// True if any mechanism can fire (the zero policy is a guaranteed no-op).
  bool active() const {
    return transient_error_rate > 0 || stuck_call_rate > 0 ||
           slow_call_rate > 0 || !outages.empty() || !page_faults.empty();
  }
};

/// Thread-safe evaluator of a FaultPolicy. One per Source; also the home of
/// the `fail_next_n` scripted-failure knob (tests inject "the next 3 calls
/// fail" at any point, independent of the policy's random schedule).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPolicy policy) : policy_(std::move(policy)) {
    for (const FaultPolicy::PageFault& fault : policy_.page_faults) {
      page_fail_remaining_[fault.offset] += fault.fail_count;
    }
  }

  /// What the injector decided for one call.
  struct Decision {
    StatusCode code = StatusCode::kOk;  ///< kOk, kUnavailable, kDeadlineExceeded
    std::chrono::microseconds extra_latency{0};  ///< slow call / stuck penalty
    const char* reason = "";                     ///< for the error message
  };

  /// Draws the decision for the next call (advances the call index).
  /// `page_offset` is the starting row of the requested page (0 for plain,
  /// unpaged calls) — it keys the policy's page-indexed fault schedule.
  /// `fingerprint` identifies the sub-query issuing the call; under
  /// `FaultPolicy::keyed_schedule` the random-rate draw is a pure function
  /// of (seed, fingerprint, page_offset, per-key attempt index), so two
  /// executors replaying the same logical calls in any global order see the
  /// same faults. Ignored (may stay 0) when keyed_schedule is off.
  Decision NextCall(uint64_t page_offset = 0, uint64_t fingerprint = 0);

  /// Scripts the next `n` calls to fail with kUnavailable, on top of
  /// whatever the policy would have decided.
  void FailNextN(uint64_t n) {
    fail_next_.fetch_add(n, std::memory_order_relaxed);
  }

  const FaultPolicy& policy() const { return policy_; }

  struct Stats {
    uint64_t calls = 0;
    uint64_t injected_unavailable = 0;  ///< transient + outage + scripted
    uint64_t injected_timeouts = 0;     ///< stuck calls
    uint64_t injected_slow = 0;         ///< answered, but late
  };
  Stats stats() const {
    Stats s;
    s.calls = calls_.load(std::memory_order_relaxed);
    s.injected_unavailable = unavailable_.load(std::memory_order_relaxed);
    s.injected_timeouts = timeouts_.load(std::memory_order_relaxed);
    s.injected_slow = slow_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  FaultPolicy policy_;
  /// Remaining scripted failures per page offset (guarded by page_mu_;
  /// empty and never locked unless the policy lists page faults).
  std::mutex page_mu_;
  std::unordered_map<uint64_t, uint64_t> page_fail_remaining_;
  /// Per-(fingerprint, offset) attempt counters for keyed_schedule draws
  /// (guarded by keyed_mu_; untouched unless the policy opts in).
  std::mutex keyed_mu_;
  std::unordered_map<uint64_t, uint64_t> keyed_attempts_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> fail_next_{0};
  std::atomic<uint64_t> unavailable_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> slow_{0};
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_FAULT_POLICY_H_
