#include "exec/event_loop.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace gencompact {

namespace {

/// splitmix64-style premix: the seeded tie-break rank of one timer id.
/// Injective enough in practice; exact collisions fall back to id order so
/// the sort stays total either way.
uint64_t TieBreakRank(uint64_t seed, uint64_t id) {
  uint64_t x = seed ^ (id + 0x9e3779b97f4a7c15ull);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

EventLoop::EventLoop(const EventLoopOptions& options)
    : clock_(options.clock != nullptr ? options.clock : Clock::Real()),
      manual_(options.manual),
      tie_break_seed_(options.tie_break_seed) {
  if (manual_) {
    // The constructing thread owns the loop: it is "the loop thread" for
    // InLoopThread() checks, and it drives execution through PumpReady().
    loop_thread_id_ = std::this_thread::get_id();
    return;
  }
  thread_ = std::thread([this] { Run(); });
  loop_thread_id_ = thread_.get_id();
}

EventLoop::~EventLoop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Anything posted after the loop exited (a straggling cross-thread
  // completion) still runs, on the destroying thread, so no continuation is
  // silently lost. In manual mode this is also what drains tasks the driver
  // never pumped.
  for (const std::function<void()>& fn : posted_) fn();
  posted_.clear();
}

void EventLoop::Post(std::function<void()> fn) {
  tasks_posted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    posted_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

EventLoop::TimerId EventLoop::ScheduleAfter(std::chrono::microseconds delay,
                                            std::function<void()> fn) {
  if (delay.count() < 0) delay = std::chrono::microseconds{0};
  timers_scheduled_.fetch_add(1, std::memory_order_relaxed);
  TimerId id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_timer_id_++;
    Timer timer;
    timer.id = id;
    timer.deadline = clock_->Now() + delay;
    timer.fn = std::move(fn);
    const size_t slot = SlotOf(timer.deadline);
    next_deadline_ = std::min(next_deadline_, timer.deadline);
    wheel_[slot].push_back(std::move(timer));
    timer_slot_.emplace(id, slot);
    armed_timers_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return id;
}

bool EventLoop::Cancel(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = timer_slot_.find(id);
  if (it == timer_slot_.end()) return false;
  std::vector<Timer>& slot = wheel_[it->second];
  for (size_t i = 0; i < slot.size(); ++i) {
    if (slot[i].id != id) continue;
    slot.erase(slot.begin() + static_cast<ptrdiff_t>(i));
    break;
  }
  timer_slot_.erase(it);
  armed_timers_.fetch_sub(1, std::memory_order_relaxed);
  timers_cancelled_.fetch_add(1, std::memory_order_relaxed);
  // next_deadline_ may now be early; that only costs one spurious wake.
  return true;
}

void EventLoop::RefreshNextDeadline() {
  next_deadline_ = std::chrono::steady_clock::time_point::max();
  if (timer_slot_.empty()) return;
  for (const std::vector<Timer>& slot : wheel_) {
    for (const Timer& timer : slot) {
      next_deadline_ = std::min(next_deadline_, timer.deadline);
    }
  }
}

void EventLoop::CollectDue(std::chrono::steady_clock::time_point now,
                           std::vector<Timer>* due) {
  if (timer_slot_.empty() || now < next_deadline_) return;
  for (std::vector<Timer>& slot : wheel_) {
    for (size_t i = 0; i < slot.size();) {
      if (slot[i].deadline > now) {
        ++i;
        continue;
      }
      timer_slot_.erase(slot[i].id);
      due->push_back(std::move(slot[i]));
      slot.erase(slot.begin() + static_cast<ptrdiff_t>(i));
    }
  }
  armed_timers_.fetch_sub(due->size(), std::memory_order_relaxed);
  timers_fired_.fetch_add(due->size(), std::memory_order_relaxed);
  // Deterministic fire order: earliest deadline first; among equal
  // deadlines, schedule order — or the seed's permutation, which is how the
  // interleaving harness explores (and exactly replays) alternative
  // orderings that are all legal under the loop's contract.
  const uint64_t seed = tie_break_seed_;
  std::sort(due->begin(), due->end(), [seed](const Timer& a, const Timer& b) {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    if (seed == 0) return a.id < b.id;
    const uint64_t ra = TieBreakRank(seed, a.id);
    const uint64_t rb = TieBreakRank(seed, b.id);
    return ra != rb ? ra < rb : a.id < b.id;
  });
  RefreshNextDeadline();
}

size_t EventLoop::PumpReady() {
  assert(manual_ && "PumpReady is the manual-drive API");
  assert(InLoopThread() && "pump from the owning thread only");
  std::vector<std::function<void()>> tasks;
  std::vector<Timer> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks.swap(posted_);
    CollectDue(clock_->Now(), &due);
  }
  for (const std::function<void()>& fn : tasks) {
    fn();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
  for (const Timer& timer : due) {
    timer.fn();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
  return tasks.size() + due.size();
}

std::chrono::steady_clock::time_point EventLoop::NextTimerDeadline() const {
  std::lock_guard<std::mutex> lock(mu_);
  // next_deadline_ can be stale-early after a Cancel; recompute exactly so
  // a simulated driver never advances time to a deadline nothing owns.
  auto exact = std::chrono::steady_clock::time_point::max();
  for (const std::vector<Timer>& slot : wheel_) {
    for (const Timer& timer : slot) exact = std::min(exact, timer.deadline);
  }
  return exact;
}

void EventLoop::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<std::function<void()>> tasks;
  std::vector<Timer> due;
  for (;;) {
    tasks.clear();
    due.clear();
    tasks.swap(posted_);
    CollectDue(clock_->Now(), &due);
    if (!tasks.empty() || !due.empty()) {
      lock.unlock();
      for (const std::function<void()>& fn : tasks) {
        fn();
        tasks_run_.fetch_add(1, std::memory_order_relaxed);
      }
      for (const Timer& timer : due) {
        timer.fn();
        tasks_run_.fetch_add(1, std::memory_order_relaxed);
      }
      lock.lock();
      continue;
    }
    if (stopping_) break;
    if (!timer_slot_.empty()) {
      // Sleep exactly to the earliest deadline (a Post or a new, earlier
      // timer notifies the cv and re-evaluates). Under a FakeClock this
      // advances virtual time to the deadline and returns immediately.
      const auto now = clock_->Now();
      const auto armed_deadline = next_deadline_;
      const auto timeout =
          armed_deadline > now
              ? std::chrono::duration_cast<std::chrono::microseconds>(
                    armed_deadline - now)
              : std::chrono::microseconds{0};
      clock_->AwaitFor(
          cv_, lock, std::max(timeout, std::chrono::microseconds{1}),
          [this, armed_deadline] {
            // A new, earlier timer must shorten the wait, not ride it out.
            return !posted_.empty() || stopping_ ||
                   next_deadline_ < armed_deadline;
          });
    } else {
      // No timers armed: a plain untimed wait, so a FakeClock is never
      // advanced speculatively while the loop is idle.
      cv_.wait(lock, [this] {
        return !posted_.empty() || stopping_ || !timer_slot_.empty();
      });
    }
  }
}

EventLoop::Stats EventLoop::stats() const {
  Stats s;
  s.tasks_posted = tasks_posted_.load(std::memory_order_relaxed);
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.timers_scheduled = timers_scheduled_.load(std::memory_order_relaxed);
  s.timers_fired = timers_fired_.load(std::memory_order_relaxed);
  s.timers_cancelled = timers_cancelled_.load(std::memory_order_relaxed);
  s.timer_wheel_size = armed_timers_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace gencompact
