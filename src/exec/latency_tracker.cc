#include "exec/latency_tracker.h"

#include <algorithm>
#include <cmath>

namespace gencompact {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile) {
  desired_ = {1, 1 + 2 * quantile, 1 + 4 * quantile, 3 + 2 * quantile, 5};
  increments_ = {0, quantile / 2, quantile, (1 + quantile) / 2, 1};
}

double P2Quantile::ParabolicAdjust(int i, double d) const {
  // The piecewise-parabolic (P²) height update: fit a parabola through the
  // marker and its neighbours, move the height to where the parabola says
  // the quantile lands after shifting the position by d (±1).
  const double n_prev = positions_[i - 1];
  const double n = positions_[i];
  const double n_next = positions_[i + 1];
  const double q_prev = heights_[i - 1];
  const double q = heights_[i];
  const double q_next = heights_[i + 1];
  return q + d / (n_next - n_prev) *
                 ((n - n_prev + d) * (q_next - q) / (n_next - n) +
                  (n_next - n - d) * (q - q_prev) / (n - n_prev));
}

void P2Quantile::Add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
    }
    return;
  }
  ++count_;

  // 1. Find the cell k containing x; stretch the extreme markers if needed.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  // 2. Shift the positions of the markers above the cell, and everyone's
  //    desired position.
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  // 3. Nudge the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double gap = desired_[i] - positions_[i];
    if ((gap >= 1 && positions_[i + 1] - positions_[i] > 1) ||
        (gap <= -1 && positions_[i - 1] - positions_[i] < -1)) {
      const double d = gap >= 1 ? 1 : -1;
      double candidate = ParabolicAdjust(i, d);
      if (heights_[i - 1] < candidate && candidate < heights_[i + 1]) {
        heights_[i] = candidate;
      } else {
        // Parabola left the bracket: fall back to linear interpolation
        // toward the neighbour in the move direction.
        const int j = i + static_cast<int>(d);
        heights_[i] += d * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += d;
    }
  }
}

double P2Quantile::Value() const {
  if (count_ == 0) return 0;
  if (count_ < 5) {
    // Exact small-sample order statistic over the (unsorted) buffer.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const auto index = static_cast<size_t>(
        quantile_ * static_cast<double>(count_ - 1) + 0.5);
    return sorted[std::min(index, static_cast<size_t>(count_ - 1))];
  }
  return heights_[2];
}

LatencyTracker::LatencyTracker(std::vector<double> quantiles) {
  estimators_.reserve(quantiles.size());
  for (const double q : quantiles) estimators_.emplace_back(q);
}

void LatencyTracker::Record(std::chrono::microseconds duration) {
  const double us = static_cast<double>(duration.count());
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_us_ = us;
    max_us_ = us;
  } else {
    min_us_ = std::min(min_us_, us);
    max_us_ = std::max(max_us_, us);
  }
  ++count_;
  sum_us_ += us;
  // Judge the observation against the running median *before* it is folded
  // in, so a burst of stragglers cannot drag the reference up under itself.
  if (count_ > kStragglerMinSamples) {
    for (const P2Quantile& estimator : estimators_) {
      if (estimator.quantile() == 0.5) {
        ++straggler_eligible_;
        if (us > kStragglerFactor * estimator.Value()) ++stragglers_;
        break;
      }
    }
  }
  for (P2Quantile& estimator : estimators_) estimator.Add(us);
}

std::chrono::microseconds LatencyTracker::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  const P2Quantile* best = nullptr;
  for (const P2Quantile& estimator : estimators_) {
    if (best == nullptr ||
        std::abs(estimator.quantile() - q) < std::abs(best->quantile() - q)) {
      best = &estimator;
    }
  }
  if (best == nullptr) return std::chrono::microseconds{0};
  return std::chrono::microseconds(static_cast<int64_t>(best->Value() + 0.5));
}

uint64_t LatencyTracker::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double LatencyTracker::straggler_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (straggler_eligible_ == 0) return 0.0;
  return static_cast<double>(stragglers_) /
         static_cast<double>(straggler_eligible_);
}

LatencyTracker::Snapshot LatencyTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.count = count_;
  if (count_ == 0) return snap;
  const auto us = [](double v) {
    return std::chrono::microseconds(static_cast<int64_t>(v + 0.5));
  };
  snap.mean = us(sum_us_ / static_cast<double>(count_));
  snap.min = us(min_us_);
  snap.max = us(max_us_);
  for (const P2Quantile& estimator : estimators_) {
    if (estimator.quantile() == 0.5) snap.p50 = us(estimator.Value());
    if (estimator.quantile() == 0.99) snap.p99 = us(estimator.Value());
  }
  snap.stragglers = stragglers_;
  if (straggler_eligible_ > 0) {
    snap.straggler_rate = static_cast<double>(stragglers_) /
                          static_cast<double>(straggler_eligible_);
  }
  return snap;
}

double EffectiveHedgeQuantile(const HedgePolicy& policy,
                              const LatencyTracker& tracker) {
  if (!policy.adaptive) return policy.quantile;
  const double q = 1.0 - tracker.straggler_rate();
  return std::min(policy.max_quantile, std::max(policy.min_quantile, q));
}

}  // namespace gencompact
