#ifndef GENCOMPACT_EXEC_ASYNC_SCHEDULER_H_
#define GENCOMPACT_EXEC_ASYNC_SCHEDULER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "exec/event_loop.h"
#include "exec/executor.h"
#include "exec/inflight_limiter.h"
#include "exec/source.h"
#include "plan/plan.h"
#include "plan/sub_query_key.h"

namespace gencompact {

/// Configuration of one async execution. `exec` carries the same knobs the
/// blocking Executor takes (retry, breaker, latency digest, hedge policy,
/// degrade, partial pages, batch width) with identical semantics.
struct AsyncExecOptions {
  ExecOptions exec;

  /// Shared in-flight limiter (owned by the mediator); may be null. Each
  /// source round trip holds one permit for exactly the duration of its
  /// simulated wire wait — permits are released across backoff sleeps, and
  /// hedges only launch when TryAcquire succeeds (optional load never queues).
  InflightLimiter* limiter = nullptr;

  /// Pool for offloading CPU-bound scan work (Source::FinishCall) off the
  /// loop thread; may be null (scans run inline on the loop).
  ThreadPool* scan_pool = nullptr;

  /// The source's catalog id — the limiter's per-source accounting key.
  uint32_t source_id = 0;

  /// Absolute deadline of the whole execution on `exec.clock` (zero time
  /// point = none; defaults from exec.deadline when unset). Bounds limiter
  /// waits — a fetch still queued past this is failed with
  /// kDeadlineExceeded instead of occupying the queue — and feeds the same
  /// fail-before-attempt / never-sleep-past-it checks the sync retry loop
  /// runs against ExecOptions::deadline.
  std::chrono::steady_clock::time_point deadline{};
};

/// Event-loop counterpart of the blocking Executor: walks the plan's
/// Union/Intersect/SP DAG as a graph of continuation tasks on one EventLoop,
/// so a single loop thread drives many outstanding simulated source round
/// trips instead of parking a pool thread on each one. Retries, backoff
/// sleeps, hedge delays, paging loops, and the simulated wire wait itself
/// are all timer events (see Source::BeginCall/FinishCall).
///
/// Semantics mirror Executor exactly — same dedup map discipline (failed
/// fetches evicted, duplicates re-fetch), same retry/breaker/deadline loop
/// with the same message strings, same paging-loop truncation rules, same
/// hedge race rules, same degrade and combine logic — so async and pool
/// execution produce identical answers and transfer stats (asserted by the
/// seeded parity fuzzer). All execution state is loop-confined: no locks
/// anywhere in the DAG walk.
///
/// One AsyncScheduler runs one plan at a time (like one Executor); many
/// schedulers share one EventLoop and one InflightLimiter concurrently.
class AsyncScheduler {
 public:
  /// `source` and everything in `options` must outlive the execution (not
  /// just the scheduler: an abandoned hedged primary may complete after the
  /// result is published — it only touches catalog-lifetime collaborators).
  AsyncScheduler(Source* source, EventLoop* loop, AsyncExecOptions options);
  ~AsyncScheduler();

  AsyncScheduler(const AsyncScheduler&) = delete;
  AsyncScheduler& operator=(const AsyncScheduler&) = delete;

  /// Blocking wrapper: runs `plan` on the loop and waits for the answer.
  /// Must NOT be called from the loop thread (it would park the loop on
  /// itself). Stats accessors are valid once this returns.
  Result<RowSet> Execute(const PlanNode& plan);

  /// Non-blocking execution: `done` runs on the loop thread once the answer
  /// is ready. The caller must keep this scheduler alive until `done` fires
  /// (stats accessors are valid from inside `done` onward).
  void ExecuteAsync(PlanPtr plan, std::function<void(Result<RowSet>)> done);

  /// Transfer/fault counters of the last completed execution (same meaning
  /// as Executor::stats()).
  ExecStats stats() const { return stats_; }

  /// Dropped ∨-branch descriptions of the last execution (degrade mode).
  const std::vector<std::string>& dropped_sub_queries() const {
    return dropped_;
  }

  /// Retryably-failed sub-query identities of the last execution — the
  /// avoid-set for re-planning.
  const std::vector<SubQueryKey>& failed_sub_query_keys() const {
    return failed_keys_;
  }

  /// Provably-incomplete sub-queries of the last execution (same meaning as
  /// Executor::truncation_records()) — the completeness markers.
  const std::vector<TruncationRecord>& truncation_records() const {
    return truncated_;
  }

 private:
  Source* source_;
  EventLoop* loop_;
  AsyncExecOptions options_;

  // Last-run results, written on the loop thread before `done` is invoked;
  // the promise/future handshake in Execute() publishes them to the caller.
  ExecStats stats_;
  std::vector<std::string> dropped_;
  std::vector<SubQueryKey> failed_keys_;
  std::vector<TruncationRecord> truncated_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_ASYNC_SCHEDULER_H_
