#ifndef GENCOMPACT_EXEC_CIRCUIT_BREAKER_H_
#define GENCOMPACT_EXEC_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/clock.h"

namespace gencompact {

struct CircuitBreakerOptions {
  /// Consecutive retryable failures that trip the breaker open.
  size_t failure_threshold = 5;
  /// How long the breaker stays open before letting probe calls through.
  std::chrono::microseconds open_duration{50000};
  /// Trial calls admitted concurrently while half-open.
  size_t half_open_probes = 1;
  /// Successful probes required to close again.
  size_t success_threshold = 1;
};

/// Per-source circuit breaker (closed → open → half-open), shared by every
/// concurrent execution against that source. Once a source has failed
/// `failure_threshold` times in a row, further calls are rejected *without*
/// contacting it — a dead source stops eating retry budgets and backoff
/// sleeps across all clients at once. After `open_duration` the breaker
/// admits a bounded number of probes; one configured streak of successes
/// closes it, any probe failure re-opens it for another window.
///
/// Time comes from an injected Clock, so tests drive the open→half-open
/// transition by advancing a FakeClock instead of sleeping. Thread-safe; the
/// critical sections are a few loads and branches.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerOptions options = {},
                          Clock* clock = nullptr)
      : options_(options), clock_(clock != nullptr ? clock : Clock::Real()) {}

  /// True if a call may proceed. While open, returns false (fast rejection);
  /// while half-open, admits up to `half_open_probes` in-flight probes.
  /// Every admitted call MUST be followed by exactly one OnSuccess or
  /// OnFailure, which is also how probe slots are released.
  bool Allow();

  /// The admitted call reached the source and got an answer (including a
  /// capability rejection — the source is alive, it just says no).
  void OnSuccess();

  /// The admitted call failed in a retryable way (unavailable / timeout).
  void OnFailure();

  State state() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  /// The state a caller would *observe if it called Allow() now*: like
  /// state(), but applies the open-window expiry without mutating — an open
  /// breaker whose window has elapsed reports kHalfOpen, because the next
  /// real call would be admitted as a probe. Load shedding and the
  /// breaker-aware cost penalty read this, so a source whose window expired
  /// is probed (and can recover) instead of being shed forever.
  State EffectiveState() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == State::kOpen && clock_->Now() >= open_until_) {
      return State::kHalfOpen;
    }
    return state_;
  }

  struct Stats {
    uint64_t opened = 0;          ///< closed/half-open → open transitions
    uint64_t closed = 0;          ///< half-open → closed transitions
    uint64_t rejected = 0;        ///< calls refused without contacting the source
    uint64_t probes_admitted = 0; ///< half-open trial calls let through
  };
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  void TripOpenLocked();  // requires mu_

  const CircuitBreakerOptions options_;
  Clock* clock_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  size_t consecutive_failures_ = 0;
  size_t probes_in_flight_ = 0;
  size_t probe_successes_ = 0;
  std::chrono::steady_clock::time_point open_until_{};
  Stats stats_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_CIRCUIT_BREAKER_H_
