#ifndef GENCOMPACT_EXEC_SCAN_H_
#define GENCOMPACT_EXEC_SCAN_H_

#include <cstdint>

#include "common/result.h"
#include "expr/condition.h"
#include "storage/row_set.h"
#include "storage/table.h"

namespace gencompact {

/// Data-plane configuration of one SP(C, A, R) scan.
struct ScanOptions {
  /// 0 = the row-at-a-time reference path (bit-identical to the original
  /// per-row EvalCondition scan). > 0 = the columnar batch path: the
  /// condition is compiled once into vectorized kernels, evaluated over
  /// selection vectors `batch_width` rows at a time, and duplicates are
  /// eliminated by batch-level hashing on row ids before any Row is
  /// materialized.
  size_t batch_width = 0;
  /// Batch path only: ship the deduplicated result through the compact
  /// columnar wire encoding (the wrapper-transfer format) instead of
  /// materialized rows. Results are identical; metrics record the bytes.
  bool wire_encode = false;
};

struct ScanMetrics {
  uint64_t wire_bytes = 0;  ///< encoded transfer size (0 unless wire_encode)
};

/// Executes SP(cond, attrs, table) with set semantics: filter the table's
/// rows with `cond`, project to `attrs`, eliminate duplicates. The paths
/// selected by `options` return value-identical RowSets.
Result<RowSet> ScanTable(const Table& table, const ConditionNode& cond,
                         const AttributeSet& attrs, const ScanOptions& options,
                         ScanMetrics* metrics = nullptr);

/// Mediator-side SP over an intermediate result: filter `input` with
/// `cond` (evaluated against input's layout) and project to `out_attrs`.
/// batch_width as in ScanOptions; no wire encoding (mediator-internal).
Result<RowSet> FilterRows(const RowSet& input, const ConditionNode& cond,
                          const AttributeSet& out_attrs, const Schema& schema,
                          size_t batch_width);

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_SCAN_H_
