#include "exec/async_scheduler.h"

#include <algorithm>
#include <cassert>
#include <future>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/backoff.h"
#include "exec/circuit_breaker.h"
#include "exec/latency_tracker.h"
#include "exec/scan.h"

namespace gencompact {
namespace {

using Cb = std::function<void(Result<RowSet>)>;

/// One deduplicated fetch slot in the loop-confined dedup map. Invariant
/// (mirrors Executor): an entry with done == true always holds a success —
/// failed fetches are evicted before anyone can observe them done.
struct FetchEntry {
  bool done = false;
  Result<RowSet> result = Status::Internal("fetch not completed");
  struct Waiter {
    const PlanNode* plan = nullptr;  // pinned by ExecState::root
    Cb cb;
  };
  std::vector<Waiter> waiters;
};

/// Everything one async execution owns. Loop-confined: every field except
/// the catalog-lifetime collaborators behind the pointers is touched only
/// from loop-thread continuations, so there are no locks anywhere in the
/// DAG walk. Kept alive by shared_ptr from every pending continuation — an
/// abandoned hedged primary may outlive the published answer (and the
/// AsyncScheduler itself), exactly like the sync FetchJob outlives its race.
struct ExecState {
  Source* source = nullptr;
  EventLoop* loop = nullptr;
  AsyncExecOptions opts;
  Clock* clock = nullptr;
  PlanPtr root;  // pins every PlanNode* the waiters hold

  std::unordered_map<SubQueryKey, std::shared_ptr<FetchEntry>, SubQueryKeyHash>
      fetches;
  /// Execution-wide retry/hedge token pool (plain: loop-confined).
  size_t budget = 0;

  /// Plain counters, folded into the scheduler when the root completes.
  /// Late increments from abandoned primaries are structurally impossible:
  /// every counter mutation sits behind a `completed` check.
  ExecStats stats;
  std::vector<std::string> dropped;
  std::vector<SubQueryKey> failed_keys;
  std::vector<TruncationRecord> truncated;
};

using StatePtr = std::shared_ptr<ExecState>;

void ExecNode(const StatePtr& st, const PlanNode& plan, Cb cb);
void ExecSource(const StatePtr& st, const PlanNode& plan, Cb cb);

std::chrono::microseconds Since(Clock* clock,
                                std::chrono::steady_clock::time_point from) {
  return std::chrono::duration_cast<std::chrono::microseconds>(clock->Now() -
                                                               from);
}

/// Publishes a fetch's answer into the dedup map and wakes everyone — the
/// shared tail of both the unbounded retry/hedge machine and the paging
/// loop. Success stays in the map for later duplicates; failure is evicted
/// FIRST, so a retryable-failure waiter that re-enters finds the doomed
/// entry gone (or replaced by a fresh in-flight fetch) — same discipline as
/// the sync executor's evict-before-ready protocol.
void PublishEntry(const StatePtr& st, const std::shared_ptr<FetchEntry>& entry,
                  const SubQueryKey& key, Cb owner, Result<RowSet> result) {
  const bool retryable = !result.ok() && IsRetryable(result.status().code());
  if (result.ok()) {
    st->stats.source_queries += 1;
    st->stats.rows_transferred += result->size();
    entry->result = result;
    entry->done = true;
  } else {
    st->stats.failed_sub_queries += 1;
    if (retryable) st->failed_keys.push_back(key);
    const auto it = st->fetches.find(key);
    if (it != st->fetches.end() && it->second == entry) st->fetches.erase(it);
  }
  std::vector<FetchEntry::Waiter> waiters = std::move(entry->waiters);
  entry->waiters.clear();
  owner(result);
  for (FetchEntry::Waiter& w : waiters) {
    if (result.ok() || !retryable) {
      w.cb(result);
    } else {
      // The owner failed retryably and evicted the entry: re-enter the
      // dedup race instead of inheriting the doomed result.
      ExecSource(st, *w.plan, std::move(w.cb));
    }
  }
}

/// The retry/hedge state machine of one physical fetch against an UNBOUNDED
/// source — the non-blocking mirror of Executor's RunRetryLoop +
/// FetchHedged. Single-threaded: every transition runs on the loop thread
/// (scan offloads post their result back), so the flags below need no
/// synchronization. Bounded sources take PageOp instead.
struct FetchOp {
  FetchOp(StatePtr state, const PlanNode& plan, const SubQueryKey& k,
          std::shared_ptr<FetchEntry> e, Cb cb)
      : st(std::move(state)),
        entry(std::move(e)),
        condition(plan.condition()),
        attrs(plan.attrs()),
        key(k),
        request{0, FaultFingerprint(*condition, attrs)},
        owner_cb(std::move(cb)),
        backoff(st->opts.exec.retry.backoff,
                st->opts.exec.retry.seed ^ FaultFingerprint(*condition, attrs)) {}

  StatePtr st;
  std::shared_ptr<FetchEntry> entry;
  ConditionPtr condition;  // pins the interned condition
  AttributeSet attrs;
  SubQueryKey key;
  PageRequest request;  // offset 0 + the key's fingerprint (keyed faults)
  Cb owner_cb;

  DecorrelatedJitterBackoff backoff;
  std::chrono::steady_clock::time_point start{};
  std::chrono::steady_clock::time_point attempt_start{};
  std::chrono::steady_clock::time_point hedge_start{};
  /// Absolute bound for limiter waits: min(execution deadline, fetch start
  /// + sub_query_deadline); zero = wait indefinitely.
  std::chrono::steady_clock::time_point permit_deadline{};
  size_t attempt = 0;

  bool completed = false;  ///< the answer for this fetch was published
  bool holds_permit = false;
  bool primary_in_flight = false;  ///< a primary round trip is on the wire
  bool primary_concluded = false;  ///< the retry chain produced its verdict
  Result<RowSet> primary_final = Status::Internal("primary not completed");

  EventLoop::TimerId hedge_timer = 0;
  bool hedge_armed = false;
  bool hedge_in_flight = false;
  bool hedge_holds_permit = false;
};

using OpPtr = std::shared_ptr<FetchOp>;

void AcquireAndBegin(const OpPtr& op);
void BeginAttempt(const OpPtr& op);
void FinishPrimary(const OpPtr& op, const Source::SourceCall& call);
void OnAttemptResult(const OpPtr& op, Result<RowSet> result);
void ConcludePrimary(const OpPtr& op);
void OnHedgeTimer(const OpPtr& op);
void FinishHedge(const OpPtr& op, const Source::SourceCall& call);
void OnHedgeResult(const OpPtr& op, Result<RowSet> result, bool admitted);
void Publish(const OpPtr& op, Result<RowSet> result);

void ReleasePrimaryPermit(const OpPtr& op) {
  if (!op->holds_permit) return;
  op->holds_permit = false;
  op->st->opts.limiter->Release(op->st->opts.source_id);
}

void ReleaseHedgePermit(const OpPtr& op) {
  if (!op->hedge_holds_permit) return;
  op->hedge_holds_permit = false;
  op->st->opts.limiter->Release(op->st->opts.source_id);
}

void Publish(const OpPtr& op, Result<RowSet> result) {
  op->completed = true;
  if (op->hedge_armed) {
    op->st->loop->Cancel(op->hedge_timer);
    op->hedge_armed = false;
  }
  PublishEntry(op->st, op->entry, op->key, std::move(op->owner_cb),
               std::move(result));
}

void ConcludePrimary(const OpPtr& op) {
  op->primary_concluded = true;
  ReleasePrimaryPermit(op);
  if (op->completed) return;  // the hedge already won; late verdict dropped
  if (!op->primary_final.ok() && op->hedge_in_flight) {
    // The race is still open: a winning hedge may yet save this fetch, so
    // stash the failure and let OnHedgeResult decide (sync: the owner waits
    // for the hedge before surfacing the primary's failure).
    return;
  }
  Publish(op, std::move(op->primary_final));
}

void AcquireAndBegin(const OpPtr& op) {
  if (op->completed) return;  // hedge won while we slept in backoff
  InflightLimiter* limiter = op->st->opts.limiter;
  if (limiter == nullptr) {
    BeginAttempt(op);
    return;
  }
  limiter->Acquire(op->st->opts.source_id, op->permit_deadline,
                   [op](Status status) {
                     if (op->completed) {
                       // Published while we queued: give the slot straight
                       // back, nothing left to do.
                       if (status.ok()) {
                         op->st->opts.limiter->Release(op->st->opts.source_id);
                       }
                       return;
                     }
                     if (!status.ok()) {
                       op->st->stats.deadlines_exceeded += 1;
                       op->primary_final =
                           Status::DeadlineExceeded(status.message());
                       ConcludePrimary(op);
                       return;
                     }
                     op->holds_permit = true;
                     BeginAttempt(op);
                   });
}

void BeginAttempt(const OpPtr& op) {
  ExecState& st = *op->st;
  ++op->attempt;
  if (st.opts.deadline != std::chrono::steady_clock::time_point{} &&
      st.clock->Now() >= st.opts.deadline) {
    // The query's absolute deadline has already passed: fail fast without
    // spending a round trip (same message as the sync retry loop).
    st.stats.deadlines_exceeded += 1;
    op->primary_final = Status::DeadlineExceeded(
        "query deadline expired before attempt " +
        std::to_string(op->attempt) + " against source '" +
        st.source->description().source_name() + "'");
    ConcludePrimary(op);
    return;
  }
  CircuitBreaker* breaker = st.opts.exec.breaker;
  if (breaker != nullptr && !breaker->Allow()) {
    // A breaker rejection ends the retry chain, same as the sync loop.
    st.stats.breaker_rejections += 1;
    op->primary_final = Status::Unavailable(
        "circuit breaker open for source '" +
        st.source->description().source_name() +
        "': failing fast without contacting the source");
    ConcludePrimary(op);
    return;
  }
  op->attempt_start =
      st.opts.exec.latency != nullptr ? st.clock->Now() : op->start;
  const Source::SourceCall call =
      st.source->BeginCall(*op->condition, op->attrs, op->request);
  op->primary_in_flight = true;
  if (call.delay.count() > 0) {
    // The simulated wire wait: a timer, not a parked thread — this is the
    // whole point of the async executor.
    st.loop->ScheduleAfter(call.delay, [op, call] { FinishPrimary(op, call); });
  } else {
    FinishPrimary(op, call);
  }
}

void FinishPrimary(const OpPtr& op, const Source::SourceCall& call) {
  ExecState& st = *op->st;
  ThreadPool* pool = st.opts.scan_pool;
  if (pool != nullptr && call.fail_code == StatusCode::kOk && !call.rejected) {
    // Offload the CPU-bound scan; the loop thread keeps driving other
    // fetches meanwhile. FinishCall touches only the Source's atomics, so
    // running it off-loop is safe; the verdict posts back to the loop.
    pool->Post([op, call] {
      PageInfo info;
      Result<RowSet> result = op->st->source->FinishCall(
          *op->condition, op->attrs, op->request, call, &info);
      op->st->loop->Post([op, result = std::move(result)]() mutable {
        OnAttemptResult(op, std::move(result));
      });
    });
    return;
  }
  PageInfo info;
  OnAttemptResult(op, st.source->FinishCall(*op->condition, op->attrs,
                                            op->request, call, &info));
}

void OnAttemptResult(const OpPtr& op, Result<RowSet> result) {
  ExecState& st = *op->st;
  op->primary_in_flight = false;
  const bool retryable = !result.ok() && IsRetryable(result.status().code());
  CircuitBreaker* breaker = st.opts.exec.breaker;
  if (breaker != nullptr) {
    // A capability rejection is an *answer* — the source is healthy. Only
    // unavailable/timeout outcomes count against its health.
    if (retryable) {
      breaker->OnFailure();
    } else {
      breaker->OnSuccess();
    }
  }
  if (!retryable) {
    if (result.ok() && st.opts.exec.latency != nullptr) {
      st.opts.exec.latency->Record(Since(st.clock, op->attempt_start));
    }
    op->primary_final = std::move(result);
    ConcludePrimary(op);
    return;
  }
  const RetryPolicy& retry = st.opts.exec.retry;
  if (op->attempt >= retry.max_attempts || op->completed) {
    // Out of attempts — or the hedge already won and published; either way
    // the chain concludes without touching the execution's counters again.
    op->primary_final = std::move(result);
    ConcludePrimary(op);
    return;
  }
  const std::chrono::microseconds delay = op->backoff.NextDelay();
  if (retry.sub_query_deadline.count() > 0 &&
      Since(st.clock, op->start) + delay > retry.sub_query_deadline) {
    st.stats.deadlines_exceeded += 1;
    op->primary_final = Status::DeadlineExceeded(
        "sub-query deadline exceeded after " + std::to_string(op->attempt) +
        " attempt(s); last error: " + result.status().message());
    ConcludePrimary(op);
    return;
  }
  if (st.opts.deadline != std::chrono::steady_clock::time_point{} &&
      st.clock->Now() + delay > st.opts.deadline) {
    // The backoff timer would fire past the query's absolute deadline:
    // give up NOW (same message as the sync loop's never-sleep-past-it
    // check; here the saving is a dead timer, there a parked thread).
    st.stats.deadlines_exceeded += 1;
    op->primary_final = Status::DeadlineExceeded(
        "query deadline exceeded after " + std::to_string(op->attempt) +
        " attempt(s); last error: " + result.status().message());
    ConcludePrimary(op);
    return;
  }
  if (st.budget == 0) {
    op->primary_final = std::move(result);  // execution budget spent
    ConcludePrimary(op);
    return;
  }
  --st.budget;
  st.stats.retries += 1;
  // Free the wire slot for the duration of the backoff sleep — a source at
  // its cap should serve someone else while this fetch cools off.
  ReleasePrimaryPermit(op);
  st.loop->ScheduleAfter(delay, [op] { AcquireAndBegin(op); });
}

void OnHedgeTimer(const OpPtr& op) {
  ExecState& st = *op->st;
  op->hedge_armed = false;
  if (op->completed || op->primary_concluded) return;
  CircuitBreaker* breaker = st.opts.exec.breaker;
  if (breaker != nullptr &&
      breaker->state() == CircuitBreaker::State::kHalfOpen) {
    return;  // probes must measure the source, not the race
  }
  InflightLimiter* limiter = st.opts.limiter;
  if (limiter != nullptr && !limiter->TryAcquire(st.opts.source_id)) {
    return;  // hedges are optional load: never queue for a permit
  }
  if (st.budget == 0) {
    // Hedges and retries draw from one pool — a hedge storm is bounded.
    if (limiter != nullptr) limiter->Release(st.opts.source_id);
    return;
  }
  --st.budget;
  op->hedge_holds_permit = limiter != nullptr;
  st.stats.hedges_launched += 1;
  if (breaker != nullptr && !breaker->Allow()) {
    st.stats.breaker_rejections += 1;
    OnHedgeResult(op,
                  Status::Unavailable("circuit breaker open for source '" +
                                      st.source->description().source_name() +
                                      "': hedge attempt failing fast"),
                  /*admitted=*/false);
    return;
  }
  op->hedge_start = st.clock->Now();
  const Source::SourceCall call =
      st.source->BeginCall(*op->condition, op->attrs, op->request);
  op->hedge_in_flight = true;
  if (call.delay.count() > 0) {
    st.loop->ScheduleAfter(call.delay, [op, call] { FinishHedge(op, call); });
  } else {
    FinishHedge(op, call);
  }
}

void FinishHedge(const OpPtr& op, const Source::SourceCall& call) {
  ExecState& st = *op->st;
  ThreadPool* pool = st.opts.scan_pool;
  if (pool != nullptr && call.fail_code == StatusCode::kOk && !call.rejected) {
    pool->Post([op, call] {
      PageInfo info;
      Result<RowSet> result = op->st->source->FinishCall(
          *op->condition, op->attrs, op->request, call, &info);
      op->st->loop->Post([op, result = std::move(result)]() mutable {
        OnHedgeResult(op, std::move(result), /*admitted=*/true);
      });
    });
    return;
  }
  PageInfo info;
  OnHedgeResult(op,
                st.source->FinishCall(*op->condition, op->attrs, op->request,
                                      call, &info),
                /*admitted=*/true);
}

void OnHedgeResult(const OpPtr& op, Result<RowSet> result, bool admitted) {
  ExecState& st = *op->st;
  op->hedge_in_flight = false;
  const bool retryable = !result.ok() && IsRetryable(result.status().code());
  CircuitBreaker* breaker = st.opts.exec.breaker;
  if (admitted && breaker != nullptr) {
    if (retryable) {
      breaker->OnFailure();
    } else {
      breaker->OnSuccess();
    }
  }
  if (admitted && result.ok() && st.opts.exec.latency != nullptr) {
    st.opts.exec.latency->Record(Since(st.clock, op->hedge_start));
  }
  ReleaseHedgePermit(op);
  if (op->completed) return;
  if (result.ok()) {
    // First success wins.
    st.stats.hedges_won += 1;
    if (!op->primary_in_flight && !op->primary_concluded) {
      // The primary never reached the source (backoff sleep or permit
      // queue): cancelled outright, the async analogue of the sync claim
      // CAS on a never-started pool task.
      st.stats.hedges_cancelled += 1;
    }
    Publish(op, std::move(result));
    return;
  }
  if (op->primary_concluded) {
    // Hedge lost and the primary's verdict is already in: surface it.
    Publish(op, std::move(op->primary_final));
  }
  // Else: hedge lost, primary still running — it publishes on conclusion.
}

/// The paging loop of one fetch against a RESULT-BOUNDED source — the
/// non-blocking mirror of Executor::FetchPaged + RunPageRetryLoop. Bounded
/// fetches never hedge (pages must advance in order; racing a multi-call
/// conversation against itself would interleave offsets), so this machine
/// is the simpler one: per-page retry chains feeding an accumulator.
struct PageOp {
  StatePtr st;
  std::shared_ptr<FetchEntry> entry;
  ConditionPtr condition;
  AttributeSet attrs;
  SubQueryKey key;
  Cb owner_cb;

  RowSet acc;
  uint64_t offset = 0;
  uint64_t pages = 0;
  PageInfo info;

  // Per-page retry-chain state, reset by StartPage for every offset.
  std::optional<DecorrelatedJitterBackoff> backoff;
  std::chrono::steady_clock::time_point page_start{};
  std::chrono::steady_clock::time_point attempt_start{};
  std::chrono::steady_clock::time_point permit_deadline{};
  size_t attempt = 0;
  bool holds_permit = false;
};

using PagePtr = std::shared_ptr<PageOp>;

void StartPage(const PagePtr& op);
void PageAcquire(const PagePtr& op);
void PageBeginAttempt(const PagePtr& op);
void PageFinish(const PagePtr& op, const Source::SourceCall& call);
void PageOnResult(const PagePtr& op, Result<RowSet> result);
void PageConclude(const PagePtr& op, Result<RowSet> result);
void FinishPaged(const PagePtr& op, bool truncated, std::string reason);

void ReleasePagePermit(const PagePtr& op) {
  if (!op->holds_permit) return;
  op->holds_permit = false;
  op->st->opts.limiter->Release(op->st->opts.source_id);
}

void StartPage(const PagePtr& op) {
  ExecState& st = *op->st;
  const RetryPolicy& retry = st.opts.exec.retry;
  // Same stream the sync loop draws: seeded per (sub-query, offset), with a
  // fresh per-page start for the sub-query deadline — a retried page resumes
  // its own discipline, not the loop's.
  op->backoff.emplace(
      retry.backoff,
      retry.seed ^ FaultFingerprint(*op->condition, op->attrs) ^ op->offset);
  op->page_start = st.clock->Now();
  op->attempt = 0;
  std::chrono::steady_clock::time_point deadline = st.opts.deadline;
  if (retry.sub_query_deadline.count() > 0) {
    const auto page_deadline = op->page_start + retry.sub_query_deadline;
    deadline = deadline == std::chrono::steady_clock::time_point{}
                   ? page_deadline
                   : std::min(deadline, page_deadline);
  }
  op->permit_deadline = deadline;
  PageAcquire(op);
}

void PageAcquire(const PagePtr& op) {
  InflightLimiter* limiter = op->st->opts.limiter;
  if (limiter == nullptr) {
    PageBeginAttempt(op);
    return;
  }
  limiter->Acquire(op->st->opts.source_id, op->permit_deadline,
                   [op](Status status) {
                     if (!status.ok()) {
                       op->st->stats.deadlines_exceeded += 1;
                       PageConclude(op,
                                    Status::DeadlineExceeded(status.message()));
                       return;
                     }
                     op->holds_permit = true;
                     PageBeginAttempt(op);
                   });
}

void PageBeginAttempt(const PagePtr& op) {
  ExecState& st = *op->st;
  ++op->attempt;
  if (st.opts.deadline != std::chrono::steady_clock::time_point{} &&
      st.clock->Now() >= st.opts.deadline) {
    st.stats.deadlines_exceeded += 1;
    PageConclude(op, Status::DeadlineExceeded(
                         "query deadline expired before attempt " +
                         std::to_string(op->attempt) + " against source '" +
                         st.source->description().source_name() + "'"));
    return;
  }
  CircuitBreaker* breaker = st.opts.exec.breaker;
  if (breaker != nullptr && !breaker->Allow()) {
    st.stats.breaker_rejections += 1;
    PageConclude(op, Status::Unavailable(
                         "circuit breaker open for source '" +
                         st.source->description().source_name() +
                         "': failing fast without contacting the source"));
    return;
  }
  op->attempt_start =
      st.opts.exec.latency != nullptr ? st.clock->Now() : op->page_start;
  const PageRequest request{
      op->offset, FaultFingerprint(*op->condition, op->attrs)};
  const Source::SourceCall call =
      st.source->BeginCall(*op->condition, op->attrs, request);
  if (call.delay.count() > 0) {
    st.loop->ScheduleAfter(call.delay, [op, call] { PageFinish(op, call); });
  } else {
    PageFinish(op, call);
  }
}

void PageFinish(const PagePtr& op, const Source::SourceCall& call) {
  ExecState& st = *op->st;
  const PageRequest request{
      op->offset, FaultFingerprint(*op->condition, op->attrs)};
  ThreadPool* pool = st.opts.scan_pool;
  if (pool != nullptr && call.fail_code == StatusCode::kOk && !call.rejected &&
      !call.paging_rejected) {
    pool->Post([op, call, request] {
      // op->info is safe to fill off-loop: exactly one page task exists per
      // PageOp at a time, and the Post below sequences the read after it.
      Result<RowSet> result = op->st->source->FinishCall(
          *op->condition, op->attrs, request, call, &op->info);
      op->st->loop->Post([op, result = std::move(result)]() mutable {
        PageOnResult(op, std::move(result));
      });
    });
    return;
  }
  PageOnResult(op, st.source->FinishCall(*op->condition, op->attrs, request,
                                         call, &op->info));
}

void PageOnResult(const PagePtr& op, Result<RowSet> result) {
  ExecState& st = *op->st;
  const bool retryable = !result.ok() && IsRetryable(result.status().code());
  CircuitBreaker* breaker = st.opts.exec.breaker;
  if (breaker != nullptr) {
    if (retryable) {
      breaker->OnFailure();
    } else {
      breaker->OnSuccess();
    }
  }
  if (!retryable) {
    if (result.ok() && st.opts.exec.latency != nullptr) {
      st.opts.exec.latency->Record(Since(st.clock, op->attempt_start));
    }
    PageConclude(op, std::move(result));
    return;
  }
  const RetryPolicy& retry = st.opts.exec.retry;
  if (op->attempt >= retry.max_attempts) {
    PageConclude(op, std::move(result));
    return;
  }
  const std::chrono::microseconds delay = op->backoff->NextDelay();
  if (retry.sub_query_deadline.count() > 0 &&
      Since(st.clock, op->page_start) + delay > retry.sub_query_deadline) {
    st.stats.deadlines_exceeded += 1;
    PageConclude(op, Status::DeadlineExceeded(
                         "sub-query deadline exceeded after " +
                         std::to_string(op->attempt) +
                         " attempt(s); last error: " +
                         result.status().message()));
    return;
  }
  if (st.opts.deadline != std::chrono::steady_clock::time_point{} &&
      st.clock->Now() + delay > st.opts.deadline) {
    st.stats.deadlines_exceeded += 1;
    PageConclude(op, Status::DeadlineExceeded(
                         "query deadline exceeded after " +
                         std::to_string(op->attempt) +
                         " attempt(s); last error: " +
                         result.status().message()));
    return;
  }
  if (st.budget == 0) {
    PageConclude(op, std::move(result));  // execution budget spent
    return;
  }
  --st.budget;
  st.stats.retries += 1;
  ReleasePagePermit(op);
  st.loop->ScheduleAfter(delay, [op] {
    InflightLimiter* limiter = op->st->opts.limiter;
    if (limiter == nullptr) {
      PageBeginAttempt(op);
      return;
    }
    PageAcquire(op);
  });
}

/// The per-page retry chain's verdict is in: fold it into the loop exactly
/// like the sync FetchPaged folds a RunPageRetryLoop return.
void PageConclude(const PagePtr& op, Result<RowSet> result) {
  ExecState& st = *op->st;
  ReleasePagePermit(op);
  if (!result.ok()) {
    // Mid-loop failure. With partial paging enabled and at least one page
    // landed, the prefix is a usable (truncated) partial answer — breaker
    // trips, budget exhaustion, and persistent transients all degrade
    // instead of discarding the rows already paid for. Otherwise the
    // sub-query fails exactly like an unbounded fetch would.
    if (op->pages > 0 && st.opts.exec.partial_pages &&
        IsRetryable(result.status().code())) {
      FinishPaged(op, /*truncated=*/true,
                  "paging interrupted: " + result.status().message());
      return;
    }
    PublishEntry(op->st, op->entry, op->key, std::move(op->owner_cb),
                 std::move(result));
    return;
  }
  ++op->pages;
  st.stats.pages_fetched += 1;
  if (op->pages == 1) {
    op->acc = std::move(result).value();
  } else {
    op->acc.MergeFrom(std::move(result).value());
  }
  const ResultBound& bound = st.source->description().result_bound();
  if (!op->info.has_more) {  // exhausted: the answer is exact
    FinishPaged(op, /*truncated=*/false, "");
    return;
  }
  if (!bound.supports_paging) {
    FinishPaged(op, /*truncated=*/true,
                "result bound " + std::to_string(bound.result_bound) +
                    " hit and the source does not page");
    return;
  }
  if (bound.max_accesses > 0 && op->pages >= bound.max_accesses) {
    FinishPaged(op, /*truncated=*/true,
                "access limit " + std::to_string(bound.max_accesses) +
                    " reached with rows remaining");
    return;
  }
  op->offset = op->info.next_offset;
  StartPage(op);
}

void FinishPaged(const PagePtr& op, bool truncated, std::string reason) {
  ExecState& st = *op->st;
  if (truncated) {
    st.stats.truncated_sub_queries += 1;
    TruncationRecord record;
    record.key = op->key;
    record.source = st.source->description().source_name();
    record.sub_query = "SP(" + op->condition->ToString() + ", " +
                       op->attrs.ToString(st.source->table().schema()) + ")";
    record.bound = st.source->description().result_bound().result_bound;
    record.rows_lower_bound = op->acc.size();
    record.reason = std::move(reason);
    st.truncated.push_back(std::move(record));
  }
  PublishEntry(op->st, op->entry, op->key, std::move(op->owner_cb),
               std::move(op->acc));
}

void StartFetch(const StatePtr& st, const PlanNode& plan,
                const SubQueryKey& key, std::shared_ptr<FetchEntry> entry,
                Cb cb) {
  if (st->source->description().result_bound().bounded()) {
    // Bounded interface: the paging loop owns the fetch (and never hedges).
    auto op = std::make_shared<PageOp>();
    op->st = st;
    op->entry = std::move(entry);
    op->condition = plan.condition();
    op->attrs = plan.attrs();
    op->key = key;
    op->owner_cb = std::move(cb);
    StartPage(op);
    return;
  }
  auto op =
      std::make_shared<FetchOp>(st, plan, key, std::move(entry), std::move(cb));
  op->start = st->clock->Now();
  std::chrono::steady_clock::time_point deadline = st->opts.deadline;
  const RetryPolicy& retry = st->opts.exec.retry;
  if (retry.sub_query_deadline.count() > 0) {
    const auto sub_deadline = op->start + retry.sub_query_deadline;
    deadline = deadline == std::chrono::steady_clock::time_point{}
                   ? sub_deadline
                   : std::min(deadline, sub_deadline);
  }
  op->permit_deadline = deadline;

  const HedgePolicy& hedge = st->opts.exec.hedge;
  LatencyTracker* latency = st->opts.exec.latency;
  // Same arming rule as the sync executor, minus the pool requirement — the
  // loop plays the role the pool played (somewhere to run the race).
  const bool hedging_armed = hedge.enabled && latency != nullptr &&
                             latency->count() >= hedge.min_samples;
  if (hedging_armed) {
    std::chrono::microseconds delay =
        latency->Quantile(EffectiveHedgeQuantile(hedge, *latency));
    delay = std::max(delay, hedge.min_delay);
    if (hedge.max_delay.count() > 0) delay = std::min(delay, hedge.max_delay);
    op->hedge_armed = true;
    // Armed once against the whole primary retry chain, exactly like the
    // sync owner's single AwaitFor against the pool task.
    op->hedge_timer =
        st->loop->ScheduleAfter(delay, [op] { OnHedgeTimer(op); });
  }
  AcquireAndBegin(op);
}

void ExecSource(const StatePtr& st, const PlanNode& plan, Cb cb) {
  // Dedup key of one SP(C, A, R): interned condition id + projection bits.
  const SubQueryKey key(*plan.condition(), plan.attrs());
  const auto it = st->fetches.find(key);
  if (it != st->fetches.end()) {
    if (it->second->done) {
      cb(it->second->result);  // done entries always hold a success
      return;
    }
    it->second->waiters.push_back(FetchEntry::Waiter{&plan, std::move(cb)});
    return;
  }
  auto entry = std::make_shared<FetchEntry>();
  st->fetches.emplace(key, entry);
  StartFetch(st, plan, key, std::move(entry), std::move(cb));
}

/// Combine of one Union/Intersect once every child completed — line for line
/// the same logic as Executor::ExecSetOp's combine (plan-order first error,
/// degrade drops retryable ∨-branches, batch mode combines in place).
Result<RowSet> CombineSetOp(const StatePtr& st, const PlanNode& plan,
                            std::vector<std::optional<Result<RowSet>>>& results) {
  const std::vector<PlanPtr>& children = plan.children();
  const bool is_union = plan.kind() == PlanNode::Kind::kUnion;
  const bool degrade = st->opts.exec.degrade_unions && is_union;
  std::vector<size_t> alive;
  alive.reserve(results.size());
  const Status* first_dropped_status = nullptr;
  for (size_t i = 0; i < results.size(); ++i) {
    const Result<RowSet>& r = *results[i];
    if (r.ok()) {
      alive.push_back(i);
      continue;
    }
    if (degrade && IsRetryable(r.status().code())) {
      if (first_dropped_status == nullptr) first_dropped_status = &r.status();
      st->stats.dropped_branches += 1;
      st->dropped.push_back(children[i]->ToShortString());
      continue;
    }
    return r.status();
  }
  if (alive.empty()) {
    return *first_dropped_status;
  }
  RowSet acc = std::move(*results[alive.front()]).value();
  if (st->opts.exec.batch_width > 0) {
    for (size_t i = 1; i < alive.size(); ++i) {
      if (is_union) {
        acc.MergeFrom(std::move(*results[alive[i]]).value());
      } else {
        acc.IntersectWith(*(*results[alive[i]]));
      }
    }
    return acc;
  }
  for (size_t i = 1; i < alive.size(); ++i) {
    const RowSet& next = *(*results[alive[i]]);
    acc =
        is_union ? RowSet::UnionOf(acc, next) : RowSet::IntersectOf(acc, next);
  }
  return acc;
}

/// Shared completion state of one set-op's children (loop-confined).
struct SetOpJoin {
  std::vector<std::optional<Result<RowSet>>> results;
  size_t remaining = 0;
};

void ExecSetOp(const StatePtr& st, const PlanNode& plan, Cb cb) {
  const std::vector<PlanPtr>& children = plan.children();
  if (children.empty()) {
    cb(Status::Internal("set operation with no children"));
    return;
  }
  const size_t fan_out = children.size();
  auto join = std::make_shared<SetOpJoin>();
  join->results.resize(fan_out);
  join->remaining = fan_out;
  auto shared_cb = std::make_shared<Cb>(std::move(cb));
  const PlanNode* node = &plan;
  // Every child starts immediately — this is where the DAG fans out; the
  // combine runs when the last outstanding child reports in. The loop bound
  // must be a local: the last child can complete synchronously, and once its
  // callback hands the answer out a blocking caller is free to destroy the
  // plan — re-reading `children` from the node after that is a use-after-free.
  for (size_t i = 0; i < fan_out; ++i) {
    ExecNode(st, *children[i], [st, node, join, shared_cb, i](Result<RowSet> r) {
      join->results[i] = std::move(r);
      if (--join->remaining > 0) return;
      (*shared_cb)(CombineSetOp(st, *node, join->results));
    });
  }
}

void ExecNode(const StatePtr& st, const PlanNode& plan, Cb cb) {
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery:
      ExecSource(st, plan, std::move(cb));
      return;
    case PlanNode::Kind::kMediatorSp: {
      const PlanNode* node = &plan;
      ExecNode(st, *plan.children().front(),
               [st, node, cb = std::move(cb)](Result<RowSet> r) {
                 if (!r.ok()) {
                   cb(r.status());
                   return;
                 }
                 cb(FilterRows(*r, *node->condition(), node->attrs(),
                               st->source->table().schema(),
                               st->opts.exec.batch_width));
               });
      return;
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect:
      ExecSetOp(st, plan, std::move(cb));
      return;
    case PlanNode::Kind::kChoice:
      cb(Status::Internal("cannot execute a plan with unresolved Choice nodes"));
      return;
  }
  cb(Status::Internal("unknown plan kind"));
}

}  // namespace

AsyncScheduler::AsyncScheduler(Source* source, EventLoop* loop,
                               AsyncExecOptions options)
    : source_(source), loop_(loop), options_(std::move(options)) {
  if (options_.exec.clock == nullptr) options_.exec.clock = loop_->clock();
  if (options_.deadline == std::chrono::steady_clock::time_point{}) {
    options_.deadline = options_.exec.deadline;
  }
}

AsyncScheduler::~AsyncScheduler() = default;

void AsyncScheduler::ExecuteAsync(PlanPtr plan,
                                  std::function<void(Result<RowSet>)> done) {
  auto st = std::make_shared<ExecState>();
  st->source = source_;
  st->loop = loop_;
  st->opts = options_;
  st->clock = options_.exec.clock;
  st->root = std::move(plan);
  st->budget = options_.exec.retry.retry_budget;
  loop_->Post([this, st, done = std::move(done)]() {
    ExecNode(st, *st->root, [this, st, done](Result<RowSet> result) {
      // Fold the loop-confined counters into the scheduler before handing
      // the answer out; the caller's synchronization with `done` (the
      // Execute() future, or reading from inside the callback) publishes
      // them.
      stats_ = st->stats;
      dropped_ = std::move(st->dropped);
      failed_keys_ = std::move(st->failed_keys);
      truncated_ = std::move(st->truncated);
      done(std::move(result));
    });
  });
}

Result<RowSet> AsyncScheduler::Execute(const PlanNode& plan) {
  assert(!loop_->InLoopThread() &&
         "blocking Execute would park the loop on itself");
  // Non-owning pin: the caller guarantees `plan` outlives this blocking call.
  PlanPtr root(&plan, [](const PlanNode*) {});
  std::promise<Result<RowSet>> promise;
  std::future<Result<RowSet>> future = promise.get_future();
  ExecuteAsync(std::move(root), [&promise](Result<RowSet> result) {
    promise.set_value(std::move(result));
  });
  return future.get();
}

}  // namespace gencompact
