#include "exec/circuit_breaker.h"

namespace gencompact {

void CircuitBreaker::TripOpenLocked() {
  state_ = State::kOpen;
  open_until_ = clock_->Now() + options_.open_duration;
  consecutive_failures_ = 0;
  probes_in_flight_ = 0;
  probe_successes_ = 0;
  ++stats_.opened;
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == State::kOpen) {
    if (clock_->Now() < open_until_) {
      ++stats_.rejected;
      return false;
    }
    // Window expired: move to half-open and fall through to the probe gate.
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
    probe_successes_ = 0;
  }
  if (state_ == State::kHalfOpen) {
    if (probes_in_flight_ >= options_.half_open_probes) {
      ++stats_.rejected;
      return false;
    }
    ++probes_in_flight_;
    ++stats_.probes_admitted;
    return true;
  }
  return true;  // closed
}

void CircuitBreaker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (probes_in_flight_ > 0) --probes_in_flight_;
      if (++probe_successes_ >= options_.success_threshold) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        ++stats_.closed;
      }
      break;
    case State::kOpen:
      // A call admitted before the trip succeeded late; the breaker stays
      // open — recovery is proven by probes, not stragglers.
      break;
  }
}

void CircuitBreaker::OnFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        TripOpenLocked();
      }
      break;
    case State::kHalfOpen:
      // The probe failed: the source is still sick; re-open a full window.
      TripOpenLocked();
      break;
    case State::kOpen:
      break;  // straggler failure; already open
  }
}

}  // namespace gencompact
