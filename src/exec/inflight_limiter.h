#ifndef GENCOMPACT_EXEC_INFLIGHT_LIMITER_H_
#define GENCOMPACT_EXEC_INFLIGHT_LIMITER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/clock.h"
#include "common/status.h"

namespace gencompact {

struct InflightLimiterOptions {
  /// Max concurrent round trips per source (0 = unlimited).
  size_t per_source = 0;
  /// Max concurrent round trips across all sources (0 = unlimited).
  size_t global = 0;
};

/// Bounds the number of source round trips on the wire at once. Fetches that
/// exceed a cap wait in FIFO order for a permit; a waiter whose deadline
/// passes before a permit frees up is failed with kDeadlineExceeded instead
/// of being granted a hopeless slot (deadline-aware waiting).
///
/// Loop-confined by design: Acquire/TryAcquire/Release run on the event-loop
/// thread only (grant callbacks fire synchronously on that thread, inside
/// the Acquire or the Release that freed the permit), so the waiter queue
/// needs no lock. The gauges are atomics, readable from any thread — they
/// feed the mediator's stats snapshot and the admission controller.
class InflightLimiter {
 public:
  /// Grant callback: OK = permit held (caller must Release exactly once);
  /// kDeadlineExceeded = the wait outlived the fetch deadline.
  using Grant = std::function<void(Status)>;

  explicit InflightLimiter(InflightLimiterOptions options,
                           Clock* clock = nullptr)
      : options_(options), clock_(clock != nullptr ? clock : Clock::Real()) {}

  /// Acquires a permit for `source_id`, or queues. `deadline` is absolute on
  /// the limiter's clock; a zero time_point means "wait indefinitely".
  /// Expired waiters are failed on every subsequent grant pass.
  void Acquire(uint32_t source_id,
               std::chrono::steady_clock::time_point deadline, Grant grant);

  /// Non-queueing acquire for optional load (hedge attempts): true = permit
  /// held, false = at a cap, skip the extra attempt.
  bool TryAcquire(uint32_t source_id);

  /// Returns one permit and grants the longest-waiting eligible waiter.
  void Release(uint32_t source_id);

  // ---- Gauges (atomics; any thread). ----
  size_t inflight() const { return inflight_.load(std::memory_order_relaxed); }
  size_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// inflight + queued: the backlog the admission controller reasons about.
  size_t pending() const { return inflight() + queue_depth(); }
  size_t peak_inflight() const {
    return peak_inflight_.load(std::memory_order_relaxed);
  }
  size_t peak_queue_depth() const {
    return peak_queue_depth_.load(std::memory_order_relaxed);
  }
  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t deadline_failures() const {
    return deadline_failures_.load(std::memory_order_relaxed);
  }

  const InflightLimiterOptions& options() const { return options_; }

 private:
  struct Waiter {
    uint32_t source_id = 0;
    std::chrono::steady_clock::time_point deadline;  // zero = none
    Grant grant;
  };

  bool HasCapacity(uint32_t source_id) const;
  void Take(uint32_t source_id);
  /// Fails expired waiters and grants the first eligible one (FIFO).
  void PumpQueue();

  InflightLimiterOptions options_;
  Clock* clock_;
  std::deque<Waiter> waiters_;
  std::unordered_map<uint32_t, size_t> per_source_inflight_;

  std::atomic<size_t> inflight_{0};
  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> peak_inflight_{0};
  std::atomic<size_t> peak_queue_depth_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> deadline_failures_{0};
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_INFLIGHT_LIMITER_H_
