#include "exec/admission.h"

#include <algorithm>
#include <string>

namespace gencompact {

Status AdmissionController::Admit(size_t pending,
                                  std::chrono::microseconds est,
                                  std::chrono::microseconds budget) {
  if (!options_.enabled) return Status::OK();
  if (options_.max_pending > 0 && pending >= options_.max_pending) {
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "admission control: backlog at capacity (" +
        std::to_string(pending) + " pending >= max_pending " +
        std::to_string(options_.max_pending) + ")");
  }
  if (budget.count() > 0 && est.count() > 0) {
    // This query plus the backlog ahead of it, drained `drain_width` fetches
    // at a time, each costing ~est: expected completion is est * (1 + ceil-ish
    // queue depth / width). If that already exceeds the deadline the query is
    // doomed before planning — shed it while it is still cheap to do so.
    const size_t width = std::max<size_t>(1, options_.drain_width);
    const double expected_us =
        static_cast<double>(est.count()) *
        (1.0 + static_cast<double>(pending) / static_cast<double>(width));
    if (expected_us > static_cast<double>(budget.count())) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "admission control: expected completion " +
          std::to_string(static_cast<long long>(expected_us)) + "us (" +
          std::to_string(pending) + " pending, ~" +
          std::to_string(static_cast<long long>(est.count())) +
          "us per trip) exceeds deadline " +
          std::to_string(static_cast<long long>(budget.count())) + "us");
    }
  }
  return Status::OK();
}

Status AdmissionController::AdmitQuery(size_t active, size_t max_inflight,
                                       size_t queue_limit) {
  if (max_inflight == 0) return Status::OK();
  if (active < max_inflight + queue_limit) return Status::OK();
  rejections_.fetch_add(1, std::memory_order_relaxed);
  return Status::Unavailable(
      "admission control: " + std::to_string(active) +
      " queries in flight >= max_inflight_queries " +
      std::to_string(max_inflight) + " + admission_queue_limit " +
      std::to_string(queue_limit));
}

}  // namespace gencompact
