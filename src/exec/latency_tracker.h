#ifndef GENCOMPACT_EXEC_LATENCY_TRACKER_H_
#define GENCOMPACT_EXEC_LATENCY_TRACKER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

namespace gencompact {

/// Streaming quantile estimator for one target quantile — the P² algorithm
/// (Jain & Chlamtac, CACM 1985). Five markers track the running min, max,
/// the target quantile and its two flanking midpoints; each observation
/// adjusts marker heights by a piecewise-parabolic interpolation. O(1) space
/// and time per observation, no sample buffer — exactly what a per-source
/// latency digest needs when millions of sub-queries flow through.
///
/// Not thread-safe on its own; LatencyTracker serializes access.
class P2Quantile {
 public:
  explicit P2Quantile(double quantile);

  void Add(double x);

  /// The current estimate. Exact (order statistic of the sorted sample)
  /// until five observations have been seen; the P² marker estimate after.
  double Value() const;

  uint64_t count() const { return count_; }
  double quantile() const { return quantile_; }

 private:
  double ParabolicAdjust(int i, double d) const;

  double quantile_;
  uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights q_i
  std::array<double, 5> positions_{};  // actual marker positions n_i (1-based)
  std::array<double, 5> desired_{};    // desired marker positions n'_i
  std::array<double, 5> increments_{}; // dn'_i per observation
};

/// Per-source streaming latency digest: a fixed set of P² estimators plus
/// count/mean/min/max, fed with the duration of every successful source
/// call. Owned by the catalog entry (like the circuit breaker) and shared
/// by every concurrent execution against that source, so the digest keeps
/// learning across queries. Thread-safe; Record() is a short mutex-guarded
/// constant-time update.
///
/// Consumers: the hedging executor (fire a backup attempt when a sub-query
/// exceeds the digest's p99), the breaker-aware cost penalty (inflate k1
/// when the tail is slow), and the /varz stats snapshot.
class LatencyTracker {
 public:
  /// Tracked quantiles; Quantile(q) answers from the nearest one.
  LatencyTracker() : LatencyTracker({0.5, 0.9, 0.95, 0.99}) {}
  explicit LatencyTracker(std::vector<double> quantiles);

  void Record(std::chrono::microseconds duration);

  /// The digest's estimate for `q`, answered by the tracked quantile
  /// closest to `q` (tracking arbitrary quantiles exactly would need a
  /// sample buffer, defeating the streaming design). Zero until the first
  /// observation.
  std::chrono::microseconds Quantile(double q) const;

  uint64_t count() const;

  /// Fraction of observations that were stragglers: calls slower than 2x the
  /// digest's running median at the moment they landed (counting starts once
  /// the median has a few samples behind it). This is the signal the adaptive
  /// hedge quantile feeds on — a source with a fat straggler tail should
  /// hedge earlier (lower quantile), a uniformly fast one later.
  double straggler_rate() const;

  struct Snapshot {
    uint64_t count = 0;
    std::chrono::microseconds mean{0};
    std::chrono::microseconds min{0};
    std::chrono::microseconds max{0};
    std::chrono::microseconds p50{0};
    std::chrono::microseconds p99{0};
    uint64_t stragglers = 0;
    double straggler_rate = 0.0;
  };
  Snapshot snapshot() const;

 private:
  /// Observations before straggler counting starts (median too noisy below).
  static constexpr uint64_t kStragglerMinSamples = 10;
  /// A straggler is an observation beyond this multiple of the running p50.
  static constexpr double kStragglerFactor = 2.0;

  mutable std::mutex mu_;
  std::vector<P2Quantile> estimators_;
  uint64_t count_ = 0;
  uint64_t stragglers_ = 0;
  uint64_t straggler_eligible_ = 0;  ///< observations judged for straggling
  double sum_us_ = 0;
  double min_us_ = 0;
  double max_us_ = 0;
};

/// Hedged-request policy for one Executor run. Off by default: the
/// zero-fault path never consults the digest, never waits on a timer, and
/// never submits a speculative task.
///
/// When enabled and a latency digest with at least `min_samples`
/// observations is available, each deduplicated source fetch is raced: the
/// primary attempt runs on the ThreadPool while the owner waits up to the
/// digest's `quantile` latency; past that point the owner launches a hedge
/// attempt — a single breaker-gated source call — and the first success
/// wins. Hedges draw from the execution-wide retry-token budget (a hedged
/// storm cannot multiply load unboundedly) and are suppressed while the
/// breaker is half-open (probes must measure the source, not the race).
struct HedgePolicy {
  bool enabled = false;

  /// Digest quantile that arms the hedge timer (e.g. 0.99 = hedge past p99).
  double quantile = 0.99;

  /// Digest observations required before hedging arms; below this the
  /// estimate is noise and every fetch would hedge.
  uint64_t min_samples = 20;

  /// Floor/ceiling clamps for the hedge delay taken from the digest.
  /// A zero max means "no ceiling".
  std::chrono::microseconds min_delay{0};
  std::chrono::microseconds max_delay{0};

  /// When set, `quantile` is ignored and the hedge quantile is derived from
  /// the digest's measured straggler rate: hedge past the (1 - straggler
  /// rate) quantile, clamped to [min_quantile, max_quantile]. A source where
  /// 5% of calls straggle hedges past ~p95; one with no stragglers stays at
  /// max_quantile and almost never hedges.
  bool adaptive = false;
  double min_quantile = 0.90;
  double max_quantile = 0.99;
};

/// The quantile a hedge timer should arm at under `policy` given what
/// `tracker` has measured: `policy.quantile` when not adaptive, otherwise
/// 1 - straggler_rate clamped to the policy's [min_quantile, max_quantile].
double EffectiveHedgeQuantile(const HedgePolicy& policy,
                              const LatencyTracker& tracker);

}  // namespace gencompact

#endif  // GENCOMPACT_EXEC_LATENCY_TRACKER_H_
