#include "exec/executor.h"

#include <optional>
#include <vector>

#include "expr/condition_eval.h"

namespace gencompact {

Result<RowSet> Executor::Execute(const PlanNode& plan) {
  {
    // Dedup scope is one execution: descriptions/statistics are stable for
    // a query's duration, not for the executor's whole lifetime.
    std::lock_guard<std::mutex> lock(fetch_mu_);
    fetches_.clear();
  }
  return Exec(plan);
}

Result<RowSet> Executor::ExecSourceQuery(const PlanNode& plan) {
  // Dedup key of one SP(C, A, R): interned condition id + projection bits.
  const SubQueryKey key(*plan.condition(), plan.attrs());
  std::shared_ptr<Fetch> fetch;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(fetch_mu_);
    auto [it, inserted] = fetches_.try_emplace(key);
    if (inserted) it->second = std::make_shared<Fetch>();
    fetch = it->second;
    owner = inserted;
  }
  if (owner) {
    fetch->result = source_->Execute(*plan.condition(), plan.attrs());
    if (fetch->result.ok()) {
      source_queries_.fetch_add(1, std::memory_order_relaxed);
      rows_transferred_.fetch_add(fetch->result->size(),
                                  std::memory_order_relaxed);
    }
    fetch->ready_promise.set_value();
  } else {
    fetch->ready.wait();
  }
  return fetch->result;
}

Result<RowSet> Executor::ExecSetOp(const PlanNode& plan) {
  const std::vector<PlanPtr>& children = plan.children();
  const bool is_union = plan.kind() == PlanNode::Kind::kUnion;

  std::vector<std::optional<Result<RowSet>>> results(children.size());
  if (pool_ != nullptr && children.size() > 1) {
    pool_->ParallelFor(children.size(), [this, &children, &results](size_t i) {
      results[i] = Exec(*children[i]);
    });
  } else {
    for (size_t i = 0; i < children.size(); ++i) {
      results[i] = Exec(*children[i]);
      // Sequential execution short-circuits on error, like the original
      // single-threaded executor; parallel execution has already paid for
      // every child by the time an error is visible.
      if (!results[i]->ok()) return results[i]->status();
    }
  }
  // Combine in plan order; the first (by child order) error wins, so the
  // surfaced Status matches sequential execution.
  for (const std::optional<Result<RowSet>>& r : results) {
    if (!(*r).ok()) return (*r).status();
  }
  RowSet acc = std::move(*results.front()).value();
  for (size_t i = 1; i < results.size(); ++i) {
    const RowSet& next = *(*results[i]);
    acc = is_union ? RowSet::UnionOf(acc, next) : RowSet::IntersectOf(acc, next);
  }
  return acc;
}

Result<RowSet> Executor::Exec(const PlanNode& plan) {
  const Schema& schema = source_->table().schema();
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery:
      return ExecSourceQuery(plan);
    case PlanNode::Kind::kMediatorSp: {
      GC_ASSIGN_OR_RETURN(RowSet input, Exec(*plan.children().front()));
      const RowLayout& in_layout = input.layout();
      const RowLayout out_layout(plan.attrs(), schema.num_attributes());
      RowSet output(out_layout);
      for (const Row& row : input.rows()) {
        GC_ASSIGN_OR_RETURN(
            const bool matches,
            EvalCondition(*plan.condition(), row, in_layout, schema));
        if (matches) output.Insert(in_layout.Project(row, out_layout));
      }
      return output;
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect:
      return ExecSetOp(plan);
    case PlanNode::Kind::kChoice:
      return Status::Internal(
          "cannot execute a plan with unresolved Choice nodes");
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace gencompact
