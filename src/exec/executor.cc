#include "exec/executor.h"

#include <optional>
#include <vector>

#include "common/backoff.h"
#include "expr/condition_eval.h"

namespace gencompact {

Result<RowSet> Executor::Execute(const PlanNode& plan) {
  {
    // Dedup scope is one execution: descriptions/statistics are stable for
    // a query's duration, not for the executor's whole lifetime.
    std::lock_guard<std::mutex> lock(fetch_mu_);
    fetches_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(degrade_mu_);
    dropped_.clear();
    failed_keys_.clear();
  }
  retry_budget_left_.store(options_.retry.retry_budget,
                           std::memory_order_relaxed);
  return Exec(plan);
}

Result<RowSet> Executor::FetchWithRetry(const PlanNode& plan,
                                        const SubQueryKey& key) {
  const RetryPolicy& retry = options_.retry;
  // Seeded per sub-query identity: parallel branches draw independent but
  // reproducible jitter streams; re-executing the same plan replays them.
  DecorrelatedJitterBackoff backoff(retry.backoff,
                                    retry.seed ^ SubQueryKeyHash{}(key));
  const std::chrono::steady_clock::time_point start = clock_->Now();
  for (size_t attempt = 1;; ++attempt) {
    if (options_.breaker != nullptr && !options_.breaker->Allow()) {
      breaker_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "circuit breaker open for source '" +
          source_->description().source_name() +
          "': failing fast without contacting the source");
    }
    Result<RowSet> result =
        source_->Execute(*plan.condition(), plan.attrs());
    const bool retryable_failure =
        !result.ok() && IsRetryable(result.status().code());
    if (options_.breaker != nullptr) {
      // A capability rejection is an *answer* — the source is healthy. Only
      // unavailable/timeout outcomes count against its health.
      if (retryable_failure) {
        options_.breaker->OnFailure();
      } else {
        options_.breaker->OnSuccess();
      }
    }
    if (!retryable_failure) return result;  // success or permanent error

    if (attempt >= retry.max_attempts) return result;
    const std::chrono::microseconds delay = backoff.NextDelay();
    if (retry.sub_query_deadline.count() > 0 &&
        (clock_->Now() - start) + delay > retry.sub_query_deadline) {
      deadlines_exceeded_.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded(
          "sub-query deadline exceeded after " + std::to_string(attempt) +
          " attempt(s); last error: " + result.status().message());
    }
    if (!TryConsumeRetryToken()) return result;  // execution budget spent
    retries_.fetch_add(1, std::memory_order_relaxed);
    clock_->SleepFor(delay);
  }
}

Result<RowSet> Executor::ExecSourceQuery(const PlanNode& plan) {
  // Dedup key of one SP(C, A, R): interned condition id + projection bits.
  const SubQueryKey key(*plan.condition(), plan.attrs());
  std::shared_ptr<Fetch> fetch;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(fetch_mu_);
    auto [it, inserted] = fetches_.try_emplace(key);
    if (inserted) it->second = std::make_shared<Fetch>();
    fetch = it->second;
    owner = inserted;
  }
  if (owner) {
    fetch->result = FetchWithRetry(plan, key);
    if (fetch->result.ok()) {
      source_queries_.fetch_add(1, std::memory_order_relaxed);
      rows_transferred_.fetch_add(fetch->result->size(),
                                  std::memory_order_relaxed);
    } else {
      failed_sub_queries_.fetch_add(1, std::memory_order_relaxed);
      if (IsRetryable(fetch->result.status().code())) {
        std::lock_guard<std::mutex> lock(degrade_mu_);
        failed_keys_.push_back(key);
      }
      // Evict the failed entry so a later duplicate of this sub-query
      // re-fetches instead of inheriting a transient failure. (Concurrent
      // waiters already holding this Fetch still see the failure; arrivals
      // after the eviction get a fresh attempt.)
      std::lock_guard<std::mutex> lock(fetch_mu_);
      const auto it = fetches_.find(key);
      if (it != fetches_.end() && it->second == fetch) fetches_.erase(it);
    }
    fetch->ready_promise.set_value();
  } else {
    fetch->ready.wait();
  }
  return fetch->result;
}

Result<RowSet> Executor::ExecSetOp(const PlanNode& plan) {
  const std::vector<PlanPtr>& children = plan.children();
  const bool is_union = plan.kind() == PlanNode::Kind::kUnion;
  const bool degrade = options_.degrade_unions && is_union;

  std::vector<std::optional<Result<RowSet>>> results(children.size());
  if (pool_ != nullptr && children.size() > 1) {
    pool_->ParallelFor(children.size(), [this, &children, &results](size_t i) {
      results[i] = Exec(*children[i]);
    });
  } else {
    for (size_t i = 0; i < children.size(); ++i) {
      results[i] = Exec(*children[i]);
      if (results[i]->ok()) continue;
      // Sequential execution short-circuits on error, like the original
      // single-threaded executor; parallel execution has already paid for
      // every child by the time an error is visible. Under union
      // degradation a retryable child failure is *not* fatal, so keep
      // going; permanent errors still stop the scan.
      if (!degrade || !IsRetryable(results[i]->status().code())) {
        return results[i]->status();
      }
    }
  }
  // Combine in plan order; the first (by child order) error wins, so the
  // surfaced Status matches sequential execution.
  std::vector<size_t> alive;
  alive.reserve(results.size());
  const Status* first_dropped_status = nullptr;
  for (size_t i = 0; i < results.size(); ++i) {
    const Result<RowSet>& r = *results[i];
    if (r.ok()) {
      alive.push_back(i);
      continue;
    }
    if (degrade && IsRetryable(r.status().code())) {
      // Graceful degradation: drop this ∨-branch, annotate the answer.
      if (first_dropped_status == nullptr) first_dropped_status = &r.status();
      dropped_branches_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(degrade_mu_);
      dropped_.push_back(children[i]->ToShortString());
      continue;
    }
    return r.status();
  }
  if (alive.empty()) {
    // Every branch failed: there is no partial answer to give. Surface the
    // first branch's failure rather than fabricating an empty result.
    return *first_dropped_status;
  }
  RowSet acc = std::move(*results[alive.front()]).value();
  for (size_t i = 1; i < alive.size(); ++i) {
    const RowSet& next = *(*results[alive[i]]);
    acc = is_union ? RowSet::UnionOf(acc, next) : RowSet::IntersectOf(acc, next);
  }
  return acc;
}

Result<RowSet> Executor::Exec(const PlanNode& plan) {
  const Schema& schema = source_->table().schema();
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery:
      return ExecSourceQuery(plan);
    case PlanNode::Kind::kMediatorSp: {
      GC_ASSIGN_OR_RETURN(RowSet input, Exec(*plan.children().front()));
      const RowLayout& in_layout = input.layout();
      const RowLayout out_layout(plan.attrs(), schema.num_attributes());
      RowSet output(out_layout);
      for (const Row& row : input.rows()) {
        GC_ASSIGN_OR_RETURN(
            const bool matches,
            EvalCondition(*plan.condition(), row, in_layout, schema));
        if (matches) output.Insert(in_layout.Project(row, out_layout));
      }
      return output;
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect:
      return ExecSetOp(plan);
    case PlanNode::Kind::kChoice:
      return Status::Internal(
          "cannot execute a plan with unresolved Choice nodes");
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace gencompact
