#include "exec/executor.h"

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/backoff.h"
#include "exec/scan.h"

namespace gencompact {

Result<RowSet> Executor::Execute(const PlanNode& plan) {
  {
    // Dedup scope is one execution: descriptions/statistics are stable for
    // a query's duration, not for the executor's whole lifetime.
    std::lock_guard<std::mutex> lock(fetch_mu_);
    fetches_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(degrade_mu_);
    dropped_.clear();
    failed_keys_.clear();
    truncated_.clear();
  }
  budget_->store(options_.retry.retry_budget, std::memory_order_relaxed);
  return Exec(plan);
}

void Executor::InitJob(FetchJob* job, const PlanNode& plan,
                       const SubQueryKey& key) const {
  job->source = source_;
  job->breaker = options_.breaker;
  job->clock = clock_;
  job->latency = options_.latency;
  job->retry = options_.retry;
  job->deadline = options_.deadline;
  job->budget = budget_;
  job->condition = plan.condition();
  job->attrs = plan.attrs();
  job->key = key;
}

void Executor::FoldJobCounters(const FetchJob& job) {
  retries_.fetch_add(job.retries.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  breaker_rejections_.fetch_add(
      job.breaker_rejections.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  deadlines_exceeded_.fetch_add(
      job.deadlines_exceeded.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

Result<RowSet> Executor::RunRetryLoop(FetchJob* job) {
  PageInfo ignored;
  return RunPageRetryLoop(job, 0, &ignored);
}

Result<RowSet> Executor::RunPageRetryLoop(FetchJob* job, uint64_t offset,
                                          PageInfo* info) {
  const RetryPolicy& retry = job->retry;
  // Seeded per sub-query identity: parallel branches draw independent but
  // reproducible jitter streams; re-executing the same plan replays them.
  // The page offset perturbs the stream so successive pages of one
  // sub-query do not share jitter.
  DecorrelatedJitterBackoff backoff(
      retry.backoff,
      retry.seed ^ FaultFingerprint(*job->condition, job->attrs) ^ offset);
  const bool has_deadline =
      job->deadline != std::chrono::steady_clock::time_point{};
  const std::chrono::steady_clock::time_point start = job->clock->Now();
  for (size_t attempt = 1;; ++attempt) {
    if (has_deadline && job->clock->Now() >= job->deadline) {
      // The query's absolute deadline has already passed: nobody is waiting
      // for this answer. Fail fast instead of spending a round trip on it.
      job->deadlines_exceeded.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded(
          "query deadline expired before attempt " + std::to_string(attempt) +
          " against source '" + job->source->description().source_name() +
          "'");
    }
    if (job->breaker != nullptr && !job->breaker->Allow()) {
      job->breaker_rejections.fetch_add(1, std::memory_order_relaxed);
      return Status::Unavailable(
          "circuit breaker open for source '" +
          job->source->description().source_name() +
          "': failing fast without contacting the source");
    }
    const std::chrono::steady_clock::time_point attempt_start =
        job->latency != nullptr ? job->clock->Now() : start;
    // A retried page re-requests the SAME offset: the source's canonical
    // order is deterministic, so the retry ships exactly the rows the
    // failed attempt would have — no duplicates, no gaps. The fingerprint
    // carries the sub-query's identity into keyed fault schedules.
    Result<RowSet> result = job->source->ExecutePage(
        *job->condition, job->attrs,
        PageRequest{offset, FaultFingerprint(*job->condition, job->attrs)},
        info);
    const bool retryable_failure =
        !result.ok() && IsRetryable(result.status().code());
    if (job->breaker != nullptr) {
      // A capability rejection is an *answer* — the source is healthy. Only
      // unavailable/timeout outcomes count against its health.
      if (retryable_failure) {
        job->breaker->OnFailure();
      } else {
        job->breaker->OnSuccess();
      }
    }
    if (!retryable_failure) {
      if (result.ok() && job->latency != nullptr) {
        job->latency->Record(std::chrono::duration_cast<std::chrono::microseconds>(
            job->clock->Now() - attempt_start));
      }
      return result;  // success or permanent error
    }

    if (attempt >= retry.max_attempts) return result;
    if (job->abandoned.load(std::memory_order_relaxed)) {
      return result;  // the hedge already won; stop burning budget
    }
    const std::chrono::microseconds delay = backoff.NextDelay();
    if (retry.sub_query_deadline.count() > 0 &&
        (job->clock->Now() - start) + delay > retry.sub_query_deadline) {
      job->deadlines_exceeded.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded(
          "sub-query deadline exceeded after " + std::to_string(attempt) +
          " attempt(s); last error: " + result.status().message());
    }
    if (has_deadline && job->clock->Now() + delay > job->deadline) {
      // The backoff sleep would overshoot the query's absolute deadline:
      // give up NOW rather than park a pool thread on a sleep whose wake-up
      // can only ever report "too late".
      job->deadlines_exceeded.fetch_add(1, std::memory_order_relaxed);
      return Status::DeadlineExceeded(
          "query deadline exceeded after " + std::to_string(attempt) +
          " attempt(s); last error: " + result.status().message());
    }
    if (!TryConsumeToken(job->budget.get())) {
      return result;  // execution budget spent
    }
    job->retries.fetch_add(1, std::memory_order_relaxed);
    job->clock->SleepFor(delay);
  }
}

Result<RowSet> Executor::RunHedgeAttempt(FetchJob* job) {
  if (job->breaker != nullptr && !job->breaker->Allow()) {
    job->breaker_rejections.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(
        "circuit breaker open for source '" +
        job->source->description().source_name() +
        "': hedge attempt failing fast");
  }
  const std::chrono::steady_clock::time_point attempt_start =
      job->clock->Now();
  // Hedges only arm for unbounded sources, where the offset-0 page IS the
  // plain call; the fingerprint keeps keyed fault schedules consistent.
  PageInfo ignored;
  Result<RowSet> result = job->source->ExecutePage(
      *job->condition, job->attrs,
      PageRequest{0, FaultFingerprint(*job->condition, job->attrs)}, &ignored);
  const bool retryable_failure =
      !result.ok() && IsRetryable(result.status().code());
  if (job->breaker != nullptr) {
    if (retryable_failure) {
      job->breaker->OnFailure();
    } else {
      job->breaker->OnSuccess();
    }
  }
  if (result.ok() && job->latency != nullptr) {
    job->latency->Record(std::chrono::duration_cast<std::chrono::microseconds>(
        job->clock->Now() - attempt_start));
  }
  return result;
}

Result<RowSet> Executor::FetchPaged(const PlanNode& plan,
                                    const SubQueryKey& key) {
  const ResultBound& bound = source_->description().result_bound();
  FetchJob job;
  InitJob(&job, plan, key);

  RowSet acc;
  uint64_t offset = 0;
  uint64_t pages = 0;
  bool truncated = false;
  std::string reason;
  for (;;) {
    PageInfo info;
    Result<RowSet> page = RunPageRetryLoop(&job, offset, &info);
    if (!page.ok()) {
      // Mid-loop failure. With partial paging enabled and at least one page
      // landed, the prefix is a usable (truncated) partial answer — breaker
      // trips, budget exhaustion, and persistent transients all degrade
      // instead of discarding the rows already paid for. Otherwise the
      // sub-query fails exactly like an unbounded fetch would.
      if (pages > 0 && options_.partial_pages &&
          IsRetryable(page.status().code())) {
        truncated = true;
        reason = "paging interrupted: " + page.status().message();
        break;
      }
      FoldJobCounters(job);
      return page;
    }
    ++pages;
    pages_fetched_.fetch_add(1, std::memory_order_relaxed);
    if (pages == 1) {
      acc = std::move(page).value();
    } else {
      acc.MergeFrom(std::move(page).value());
    }
    if (!info.has_more) break;  // exhausted: the answer is exact
    if (!bound.supports_paging) {
      truncated = true;
      reason = "result bound " + std::to_string(bound.result_bound) +
               " hit and the source does not page";
      break;
    }
    if (bound.max_accesses > 0 && pages >= bound.max_accesses) {
      truncated = true;
      reason = "access limit " + std::to_string(bound.max_accesses) +
               " reached with rows remaining";
      break;
    }
    offset = info.next_offset;
  }
  FoldJobCounters(job);

  if (truncated) {
    truncated_sub_queries_.fetch_add(1, std::memory_order_relaxed);
    TruncationRecord record;
    record.key = key;
    record.source = source_->description().source_name();
    record.sub_query = "SP(" + plan.condition()->ToString() + ", " +
                       plan.attrs().ToString(source_->table().schema()) + ")";
    record.bound = bound.result_bound;
    record.rows_lower_bound = acc.size();
    record.reason = std::move(reason);
    std::lock_guard<std::mutex> lock(degrade_mu_);
    truncated_.push_back(std::move(record));
  }
  return acc;
}

Result<RowSet> Executor::FetchResolving(const PlanNode& plan,
                                        const SubQueryKey& key) {
  if (source_->description().result_bound().bounded()) {
    // Bounded interface: the paging loop owns the fetch. Hedging is
    // bypassed — pages must advance in order, and racing a multi-call
    // conversation against itself would interleave offsets.
    return FetchPaged(plan, key);
  }
  const HedgePolicy& hedge = options_.hedge;
  const bool hedging_armed =
      hedge.enabled && pool_ != nullptr && options_.latency != nullptr &&
      options_.latency->count() >= hedge.min_samples;
  if (!hedging_armed) {
    FetchJob job;
    InitJob(&job, plan, key);
    Result<RowSet> result = RunRetryLoop(&job);
    FoldJobCounters(job);
    return result;
  }

  std::chrono::microseconds delay = options_.latency->Quantile(
      EffectiveHedgeQuantile(hedge, *options_.latency));
  delay = std::max(delay, hedge.min_delay);
  if (hedge.max_delay.count() > 0) delay = std::min(delay, hedge.max_delay);

  auto job = std::make_shared<FetchJob>();
  InitJob(job.get(), plan, key);
  return FetchHedged(job, delay);
}

Result<RowSet> Executor::FetchHedged(const std::shared_ptr<FetchJob>& job,
                                     std::chrono::microseconds delay) {
  // The primary runs as a pool task; the owner arms the hedge timer against
  // it. The task is guarded by the claim CAS so a loser that never started
  // is truly cancelled — it returns without contacting the source.
  pool_->Submit([job]() {
    int unclaimed = 0;
    if (!job->primary_claim.compare_exchange_strong(unclaimed, 2)) return;
    Result<RowSet> result = RunRetryLoop(job.get());
    std::lock_guard<std::mutex> lock(job->mu);
    job->primary_result = std::move(result);
    job->primary_done = true;
    job->cv.notify_all();
  });

  {
    std::unique_lock<std::mutex> lock(job->mu);
    const bool done =
        clock_->AwaitFor(job->cv, lock, delay,
                         [&job] { return job->primary_done; });
    if (done) {
      Result<RowSet> result = std::move(job->primary_result);
      lock.unlock();
      FoldJobCounters(*job);
      return result;
    }
  }

  // The primary is past the digest's hedge point. Launch the backup only if
  // the breaker is not half-open (probes must measure the source, not the
  // race) and the execution-wide budget still has a token — hedges and
  // retries draw from the same pool, so a hedge storm is bounded.
  const bool breaker_half_open =
      options_.breaker != nullptr &&
      options_.breaker->state() == CircuitBreaker::State::kHalfOpen;
  if (!breaker_half_open && TryConsumeRetryToken()) {
    hedges_launched_.fetch_add(1, std::memory_order_relaxed);
    Result<RowSet> hedged = RunHedgeAttempt(job.get());
    if (hedged.ok()) {
      // First success wins. If the primary never started, cancel it with
      // one CAS; if it is mid-flight, it finishes into the job (which the
      // task keeps alive) and its late result is discarded — a loser can
      // never publish into the dedup map or the executor's stats.
      job->abandoned.store(true, std::memory_order_relaxed);
      int unclaimed = 0;
      if (job->primary_claim.compare_exchange_strong(unclaimed, 1)) {
        hedges_cancelled_.fetch_add(1, std::memory_order_relaxed);
      }
      hedges_won_.fetch_add(1, std::memory_order_relaxed);
      FoldJobCounters(*job);
      return hedged;
    }
  }

  // No hedge allowed, or the hedge lost: the primary is the answer. If its
  // task has not started yet, claim and run it inline — the owner must make
  // progress even when every pool worker is itself parked in a hedged wait,
  // so we never block unbounded on an unstarted task.
  int unclaimed = 0;
  if (job->primary_claim.compare_exchange_strong(unclaimed, 1)) {
    Result<RowSet> result = RunRetryLoop(job.get());
    FoldJobCounters(*job);
    return result;
  }
  std::unique_lock<std::mutex> lock(job->mu);
  job->cv.wait(lock, [&job] { return job->primary_done; });
  Result<RowSet> result = std::move(job->primary_result);
  lock.unlock();
  FoldJobCounters(*job);
  return result;
}

Result<RowSet> Executor::ExecSourceQuery(const PlanNode& plan) {
  // Dedup key of one SP(C, A, R): interned condition id + projection bits.
  const SubQueryKey key(*plan.condition(), plan.attrs());
  for (;;) {
    std::shared_ptr<Fetch> fetch;
    bool owner = false;
    {
      std::lock_guard<std::mutex> lock(fetch_mu_);
      auto [it, inserted] = fetches_.try_emplace(key);
      if (inserted) it->second = std::make_shared<Fetch>();
      fetch = it->second;
      owner = inserted;
    }
    if (owner) {
      fetch->result = FetchResolving(plan, key);
      if (fetch->result.ok()) {
        source_queries_.fetch_add(1, std::memory_order_relaxed);
        rows_transferred_.fetch_add(fetch->result->size(),
                                    std::memory_order_relaxed);
      } else {
        failed_sub_queries_.fetch_add(1, std::memory_order_relaxed);
        if (IsRetryable(fetch->result.status().code())) {
          std::lock_guard<std::mutex> lock(degrade_mu_);
          failed_keys_.push_back(key);
        }
        // Evict the failed entry so a later duplicate of this sub-query
        // re-fetches instead of inheriting a transient failure. The evict
        // happens *before* ready fires, so every waiter that observes the
        // failure below is guaranteed to find the entry gone (or replaced
        // by a fresh fetch) when it loops around.
        std::lock_guard<std::mutex> lock(fetch_mu_);
        const auto it = fetches_.find(key);
        if (it != fetches_.end() && it->second == fetch) fetches_.erase(it);
      }
      fetch->ready_promise.set_value();
      return fetch->result;
    }
    fetch->ready.wait();
    if (fetch->result.ok() || !IsRetryable(fetch->result.status().code())) {
      return fetch->result;
    }
    // The owner failed retryably and evicted this entry: loop and re-enter
    // the dedup race instead of inheriting the doomed result. This duplicate
    // either becomes the new owner (and re-fetches) or joins a newer
    // in-flight fetch. Terminates: each iteration joins a fetch created by
    // some thread that itself returns after completing it, so generations
    // are bounded by the number of threads racing this key.
  }
}

Result<RowSet> Executor::ExecSetOp(const PlanNode& plan) {
  const std::vector<PlanPtr>& children = plan.children();
  const bool is_union = plan.kind() == PlanNode::Kind::kUnion;
  const bool degrade = options_.degrade_unions && is_union;

  std::vector<std::optional<Result<RowSet>>> results(children.size());
  if (pool_ != nullptr && children.size() > 1) {
    pool_->ParallelFor(children.size(), [this, &children, &results](size_t i) {
      results[i] = Exec(*children[i]);
    });
  } else {
    for (size_t i = 0; i < children.size(); ++i) {
      results[i] = Exec(*children[i]);
      if (results[i]->ok()) continue;
      // Sequential execution short-circuits on error, like the original
      // single-threaded executor; parallel execution has already paid for
      // every child by the time an error is visible. Under union
      // degradation a retryable child failure is *not* fatal, so keep
      // going; permanent errors still stop the scan.
      if (!degrade || !IsRetryable(results[i]->status().code())) {
        return results[i]->status();
      }
    }
  }
  // Combine in plan order; the first (by child order) error wins, so the
  // surfaced Status matches sequential execution.
  std::vector<size_t> alive;
  alive.reserve(results.size());
  const Status* first_dropped_status = nullptr;
  for (size_t i = 0; i < results.size(); ++i) {
    const Result<RowSet>& r = *results[i];
    if (r.ok()) {
      alive.push_back(i);
      continue;
    }
    if (degrade && IsRetryable(r.status().code())) {
      // Graceful degradation: drop this ∨-branch, annotate the answer.
      if (first_dropped_status == nullptr) first_dropped_status = &r.status();
      dropped_branches_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(degrade_mu_);
      dropped_.push_back(children[i]->ToShortString());
      continue;
    }
    return r.status();
  }
  if (alive.empty()) {
    // Every branch failed: there is no partial answer to give. Surface the
    // first branch's failure rather than fabricating an empty result.
    return *first_dropped_status;
  }
  RowSet acc = std::move(*results[alive.front()]).value();
  if (options_.batch_width > 0) {
    // Batch mode: combine in place. Union moves rows (hashes are cached on
    // the Row, so merging re-buckets without re-hashing); intersect erases.
    for (size_t i = 1; i < alive.size(); ++i) {
      if (is_union) {
        acc.MergeFrom(std::move(*results[alive[i]]).value());
      } else {
        acc.IntersectWith(*(*results[alive[i]]));
      }
    }
    return acc;
  }
  for (size_t i = 1; i < alive.size(); ++i) {
    const RowSet& next = *(*results[alive[i]]);
    acc = is_union ? RowSet::UnionOf(acc, next) : RowSet::IntersectOf(acc, next);
  }
  return acc;
}

Result<RowSet> Executor::Exec(const PlanNode& plan) {
  const Schema& schema = source_->table().schema();
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery:
      return ExecSourceQuery(plan);
    case PlanNode::Kind::kMediatorSp: {
      GC_ASSIGN_OR_RETURN(RowSet input, Exec(*plan.children().front()));
      // Compile-once evaluation in both modes; batch mode additionally
      // transposes the intermediate result and runs vectorized kernels.
      return FilterRows(input, *plan.condition(), plan.attrs(), schema,
                        options_.batch_width);
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect:
      return ExecSetOp(plan);
    case PlanNode::Kind::kChoice:
      return Status::Internal(
          "cannot execute a plan with unresolved Choice nodes");
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace gencompact
