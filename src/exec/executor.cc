#include "exec/executor.h"

#include "expr/condition_eval.h"

namespace gencompact {

Result<RowSet> Executor::Execute(const PlanNode& plan) {
  const Schema& schema = source_->table().schema();
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery: {
      GC_ASSIGN_OR_RETURN(RowSet rows,
                          source_->Execute(*plan.condition(), plan.attrs()));
      ++stats_.source_queries;
      stats_.rows_transferred += rows.size();
      return rows;
    }
    case PlanNode::Kind::kMediatorSp: {
      GC_ASSIGN_OR_RETURN(RowSet input, Execute(*plan.children().front()));
      const RowLayout& in_layout = input.layout();
      const RowLayout out_layout(plan.attrs(), schema.num_attributes());
      RowSet output(out_layout);
      for (const Row& row : input.rows()) {
        GC_ASSIGN_OR_RETURN(
            const bool matches,
            EvalCondition(*plan.condition(), row, in_layout, schema));
        if (matches) output.Insert(in_layout.Project(row, out_layout));
      }
      return output;
    }
    case PlanNode::Kind::kUnion: {
      GC_ASSIGN_OR_RETURN(RowSet acc, Execute(*plan.children().front()));
      for (size_t i = 1; i < plan.children().size(); ++i) {
        GC_ASSIGN_OR_RETURN(RowSet next, Execute(*plan.children()[i]));
        acc = RowSet::UnionOf(acc, next);
      }
      return acc;
    }
    case PlanNode::Kind::kIntersect: {
      GC_ASSIGN_OR_RETURN(RowSet acc, Execute(*plan.children().front()));
      for (size_t i = 1; i < plan.children().size(); ++i) {
        GC_ASSIGN_OR_RETURN(RowSet next, Execute(*plan.children()[i]));
        acc = RowSet::IntersectOf(acc, next);
      }
      return acc;
    }
    case PlanNode::Kind::kChoice:
      return Status::Internal(
          "cannot execute a plan with unresolved Choice nodes");
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace gencompact
