#include "planner/plan_cache.h"

#include <algorithm>

namespace gencompact {

PlanCache::PlanCache(size_t capacity, size_t num_shards) {
  num_shards = std::max<size_t>(1, num_shards);
  // Round the per-shard capacity up so the total is never below the
  // requested capacity (a shard must hold at least one entry).
  shard_capacity_ = std::max<size_t>(1, (capacity + num_shards - 1) / num_shards);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<PlanPtr> PlanCache::Lookup(const PlanCacheKey& key,
                                         bool count_stats) {
  Shard& shard = ShardFor(key);
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    if (count_stats) ++shard.misses;
    return std::nullopt;
  }
  if (count_stats) ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // move to front
  return it->second->plan;
}

void PlanCache::Insert(const PlanCacheKey& key, PlanPtr plan,
                       ConditionPtr pinned) {
  Shard& shard = ShardFor(key);
  const std::unique_lock<std::mutex> lock = LockShard(shard);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    ++shard.refreshes;
    it->second->plan = std::move(plan);
    if (pinned != nullptr) it->second->pinned = std::move(pinned);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, std::move(plan), std::move(pinned)});
  shard.entries[key] = shard.lru.begin();
  while (shard.entries.size() > shard_capacity_) {
    shard.entries.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

void PlanCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->entries.clear();
  }
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

size_t PlanCache::hits() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->hits;
  }
  return total;
}

size_t PlanCache::misses() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->misses;
  }
  return total;
}

size_t PlanCache::refreshes() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->refreshes;
  }
  return total;
}

size_t PlanCache::contended() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->contended;
  }
  return total;
}

std::vector<PlanCache::ShardStats> PlanCache::PerShardStats() const {
  std::vector<ShardStats> stats;
  stats.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    ShardStats s;
    s.size = shard->entries.size();
    s.hits = shard->hits;
    s.misses = shard->misses;
    s.refreshes = shard->refreshes;
    s.contended = shard->contended;
    stats.push_back(s);
  }
  return stats;
}

double PlanCache::hit_rate() const {
  size_t total_hits = 0;
  size_t total_lookups = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total_hits += shard->hits;
    total_lookups += shard->hits + shard->misses;
  }
  if (total_lookups == 0) return 0.0;
  return static_cast<double>(total_hits) / static_cast<double>(total_lookups);
}

}  // namespace gencompact
