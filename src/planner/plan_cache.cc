#include "planner/plan_cache.h"

namespace gencompact {

std::optional<PlanPtr> PlanCache::Lookup(const std::string& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->plan;
}

void PlanCache::Insert(const std::string& key, PlanPtr plan) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  entries_[key] = lru_.begin();
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

void PlanCache::Clear() {
  lru_.clear();
  entries_.clear();
}

}  // namespace gencompact
