#include "planner/ipg.h"

#include <algorithm>
#include <bit>

#include "planner/child_subsets.h"

namespace gencompact {

namespace {

// Returns Attr(cond) or an empty optional when the condition references
// attributes outside the schema (such conditions are unplannable).
std::optional<AttributeSet> AttrsOf(const ConditionNode& cond,
                                    const Schema& schema) {
  const Result<AttributeSet> attrs = cond.Attributes(schema);
  if (!attrs.ok()) return std::nullopt;
  return attrs.value();
}

PlanPtr CheaperOf(PlanPtr a, PlanPtr b, const CostModel& model) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  const double cost_a = model.PlanCost(*a);
  const double cost_b = model.PlanCost(*b);
  if (cost_a != cost_b) return cost_a < cost_b ? a : b;
  // Tie-break on structural simplicity so equal-cost alternatives resolve
  // deterministically to the smaller plan.
  return a->Size() <= b->Size() ? a : b;
}

}  // namespace

PlanPtr Ipg::Plan(const ConditionPtr& node, const AttributeSet& attrs) {
  ++stats_.calls;
  const SubQueryKey key(*node, attrs);
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  PlanPtr plan = PlanUncached(node, attrs);
  memo_.emplace(key, plan);
  return plan;
}

PlanPtr Ipg::DownloadPlan(const ConditionPtr& node, const AttributeSet& attrs) {
  const std::optional<AttributeSet> cond_attrs =
      AttrsOf(*node, source_->schema());
  if (!cond_attrs.has_value()) return nullptr;
  const AttributeSet needed = attrs.Union(*cond_attrs);
  const ConditionPtr true_cond = ConditionNode::True();
  if (!source_->checker()->Supports(*true_cond, needed)) return nullptr;
  return PlanNode::MediatorSp(node, attrs,
                              PlanNode::SourceQuery(true_cond, needed));
}

PlanPtr Ipg::PlanUncached(const ConditionPtr& node, const AttributeSet& attrs) {
  Checker* checker = source_->checker();

  // Pure plan; with PR1 it short-circuits the whole search (it is optimal
  // under the cost model: any impure plan uses at least as many source
  // queries and transfers at least as much data).
  PlanPtr pure;
  if (checker->Supports(*node, attrs)) {
    pure = PlanNode::SourceQuery(node, attrs);
    if (options_.pr1) return pure;
  }

  PlanPtr best = DownloadPlan(node, attrs);  // plan_impure seed

  switch (node->kind()) {
    case ConditionNode::Kind::kTrue:
    case ConditionNode::Kind::kAtom:
      break;  // leaves: no further impure plans
    case ConditionNode::Kind::kOr:
      best = CheaperOf(PlanOrNode(node, attrs), best, source_->cost_model());
      break;
    case ConditionNode::Kind::kAnd:
      best = CheaperOf(PlanAndNode(node, attrs), best, source_->cost_model());
      break;
  }

  if (pure != nullptr) {
    best = CheaperOf(pure, best, source_->cost_model());
  }
  return best;
}

void Ipg::AddSubPlan(SubPlanTable* table, uint32_t mask, PlanPtr plan,
                     bool pure) {
  SubPlan sub;
  sub.cost = Cost(*plan);
  sub.plan = std::move(plan);
  sub.pure = pure;
  ++stats_.total_subplans;
  std::vector<SubPlan>& entry = (*table)[mask];
  if (options_.pr2 && !entry.empty()) {
    // PR2: keep only the cheapest plan per sub-query (pure flag follows the
    // survivor; ties prefer the pure plan so PR1/PR3 checks stay strong).
    const SubPlan& current = entry.front();
    const bool replace = sub.cost < current.cost ||
                         (sub.cost == current.cost && sub.pure && !current.pure);
    if (replace) entry.front() = std::move(sub);
    return;
  }
  entry.push_back(std::move(sub));
}

void Ipg::PruneDominated(SubPlanTable* table) const {
  if (!options_.pr3) return;
  // A sub-plan P2 for cover N2 is dominated by P1 for cover N1 when
  // N2 ⊂ N1 and cost(P1) <= cost(P2) (Section 6.3, PR3). Equal covers are
  // already handled by PR2 / kept as alternatives when PR2 is off.
  for (auto it = table->begin(); it != table->end();) {
    const uint32_t mask = it->first;
    std::vector<SubPlan>& plans = it->second;
    for (const auto& [other_mask, other_plans] : *table) {
      if (other_mask == mask) continue;
      if ((mask & other_mask) != mask) continue;  // need mask ⊂ other_mask
      double cheapest_other = -1;
      for (const SubPlan& op : other_plans) {
        if (cheapest_other < 0 || op.cost < cheapest_other) {
          cheapest_other = op.cost;
        }
      }
      if (cheapest_other < 0) continue;
      std::erase_if(plans, [cheapest_other](const SubPlan& sp) {
        return cheapest_other <= sp.cost;
      });
      if (plans.empty()) break;
    }
    it = plans.empty() ? table->erase(it) : std::next(it);
  }
}

std::vector<uint32_t> Ipg::SubsetMasks(size_t k) {
  std::vector<uint32_t> masks;
  if (k <= options_.max_subset_children && k < 31) {
    const uint32_t full = (uint32_t{1} << k) - 1;
    masks.reserve(full);
    for (uint32_t mask = 1; mask <= full; ++mask) masks.push_back(mask);
  } else {
    stats_.incomplete = true;
    if (k < 31) {
      const uint32_t full = (uint32_t{1} << k) - 1;
      masks.push_back(full);
      for (size_t i = 0; i < k; ++i) masks.push_back(uint32_t{1} << i);
    }
  }
  return masks;
}

PlanPtr Ipg::CombineSubPlans(const SubPlanTable& table, uint32_t universe,
                             bool intersect) {
  std::vector<SetCoverCandidate> candidates;
  std::vector<const SubPlan*> plans;
  for (const auto& [mask, entry] : table) {
    for (const SubPlan& sub : entry) {
      candidates.push_back({mask, sub.cost});
      plans.push_back(&sub);
    }
  }
  ++stats_.mcsc_invocations;
  stats_.max_subplans = std::max(stats_.max_subplans, candidates.size());
  const SetCoverResult cover =
      SolveMinCostSetCover(universe, candidates, options_.mcsc);
  if (!cover.found) return nullptr;
  if (!cover.optimal) stats_.incomplete = true;
  std::vector<PlanPtr> chosen;
  chosen.reserve(cover.chosen.size());
  for (int index : cover.chosen) {
    chosen.push_back(plans[static_cast<size_t>(index)]->plan);
  }
  return intersect ? PlanNode::IntersectOf(std::move(chosen))
                   : PlanNode::UnionOf(std::move(chosen));
}

PlanPtr Ipg::PlanOrNode(const ConditionPtr& node, const AttributeSet& attrs) {
  Checker* checker = source_->checker();
  const std::vector<ConditionPtr>& children = node->children();
  const size_t k = children.size();
  if (k >= 31) {
    stats_.incomplete = true;
    return nullptr;
  }
  const uint32_t universe = (uint32_t{1} << k) - 1;

  // Step 1 (Figure 5, lines 1-7): find sub-plans.
  SubPlanTable table;
  for (uint32_t mask : SubsetMasks(k)) {
    const ConditionPtr sub_cond = ChildSubsetCondition(*node, mask);
    if (checker->Supports(*sub_cond, attrs)) {
      AddSubPlan(&table, mask, PlanNode::SourceQuery(sub_cond, attrs),
                 /*pure=*/true);
    }
  }
  for (size_t i = 0; i < k; ++i) {
    const uint32_t mask = uint32_t{1} << i;
    const auto it = table.find(mask);
    const bool has_pure =
        it != table.end() &&
        std::any_of(it->second.begin(), it->second.end(),
                    [](const SubPlan& sp) { return sp.pure; });
    // PR1: skip the recursive search when a pure sub-plan exists.
    if (options_.pr1 && has_pure) continue;
    PlanPtr sub = Plan(children[i], attrs);
    if (sub != nullptr) AddSubPlan(&table, mask, std::move(sub), /*pure=*/false);
  }

  // Step 2 (lines 8-14): prune dominated sub-plans, then choose the
  // min-cost set of sub-plans covering all children (MCSC), combining with
  // mediator union.
  PruneDominated(&table);
  return CombineSubPlans(table, universe, /*intersect=*/false);
}

Ipg::SubPlanTable Ipg::BuildAndSubPlans(
    const ConditionPtr& node, const AttributeSet& work_attrs,
    const std::vector<AttributeSet>& child_attrs,
    const std::vector<uint32_t>& masks) {
  Checker* checker = source_->checker();
  const Schema& schema = source_->schema();
  const std::vector<ConditionPtr>& children = node->children();
  const size_t k = children.size();

  // Step 1a (Figure 6, lines 3-9): supported conjunctions of child subsets,
  // plus MaxEval extensions - children evaluable at the mediator from the
  // attributes the source query already exports.
  SubPlanTable table;
  for (uint32_t mask : masks) {
    const ConditionPtr sub_cond = ChildSubsetCondition(*node, mask);
    bool added_pure = false;
    for (const AttributeSet& exported : checker->Check(*sub_cond)) {
      if (!work_attrs.IsSubsetOf(exported)) continue;
      if (!added_pure) {
        AddSubPlan(&table, mask, PlanNode::SourceQuery(sub_cond, work_attrs),
                   /*pure=*/true);
        added_pure = true;
      }
      // MaxEval(A_N, n) \ N: children whose conditions the mediator can
      // evaluate using attributes exported by this source query.
      uint32_t nadd = 0;
      for (size_t m = 0; m < k; ++m) {
        if (mask >> m & 1) continue;
        if (child_attrs[m].IsSubsetOf(exported)) nadd |= uint32_t{1} << m;
      }
      if (nadd == 0) continue;
      const size_t nadd_count = static_cast<size_t>(std::popcount(nadd));
      if (nadd_count > options_.max_subset_children) {
        stats_.incomplete = true;
        continue;
      }
      // Enumerate nonempty M subsets of nadd via the subset-stepping trick.
      for (uint32_t m_sub = nadd; m_sub != 0; m_sub = (m_sub - 1) & nadd) {
        const ConditionPtr local_cond = ChildSubsetCondition(*node, m_sub);
        const std::optional<AttributeSet> local_attrs =
            AttrsOf(*local_cond, schema);
        if (!local_attrs.has_value()) continue;
        const AttributeSet inner = work_attrs.Union(*local_attrs);
        if (!inner.IsSubsetOf(exported)) continue;
        AddSubPlan(&table, mask | m_sub,
                   PlanNode::MediatorSp(local_cond, work_attrs,
                                        PlanNode::SourceQuery(sub_cond, inner)),
                   /*pure=*/false);
      }
    }
  }

  // Step 1b (lines 10-13): recursive plans for single children, optionally
  // evaluating sibling subsets at the mediator on their results.
  //
  // PR1 (N'' == N') and PR3 (N' strict subset of N'') prune recursion when
  // a pure sub-plan already covers N' or a superset.
  std::vector<uint32_t> pure_masks;
  for (const auto& [mask, entry] : table) {
    for (const SubPlan& sub : entry) {
      if (sub.pure) {
        pure_masks.push_back(mask);
        break;
      }
    }
  }
  const auto pure_superset_exists = [&](uint32_t mask) {
    for (uint32_t pm : pure_masks) {
      if ((mask & pm) != mask) continue;  // need mask subset of pm
      if (pm == mask && options_.pr1) return true;
      if (pm != mask && options_.pr3) return true;
    }
    return false;
  };

  for (size_t i = 0; i < k; ++i) {
    const uint32_t self = uint32_t{1} << i;
    for (uint32_t mask : masks) {
      if ((mask & self) == 0) continue;
      if (pure_superset_exists(mask)) continue;
      const uint32_t rest = mask & ~self;
      AttributeSet requested = work_attrs;
      ConditionPtr rest_cond;
      if (rest != 0) {
        rest_cond = ChildSubsetCondition(*node, rest);
        const std::optional<AttributeSet> rest_attrs =
            AttrsOf(*rest_cond, schema);
        if (!rest_attrs.has_value()) continue;
        requested = requested.Union(*rest_attrs);
      }
      PlanPtr sub = Plan(children[i], requested);
      if (sub == nullptr) continue;
      PlanPtr candidate =
          rest != 0
              ? PlanNode::MediatorSp(rest_cond, work_attrs, std::move(sub))
              : std::move(sub);
      AddSubPlan(&table, mask, std::move(candidate), /*pure=*/false);
    }
  }
  return table;
}

PlanPtr Ipg::PlanAndNode(const ConditionPtr& node, const AttributeSet& attrs) {
  const Schema& schema = source_->schema();
  const std::vector<ConditionPtr>& children = node->children();
  const size_t k = children.size();
  if (k >= 31) {
    stats_.incomplete = true;
    return nullptr;
  }
  const uint32_t universe = (uint32_t{1} << k) - 1;

  // Per-child attribute sets (for MaxEval).
  std::vector<AttributeSet> child_attrs(k);
  for (size_t i = 0; i < k; ++i) {
    const std::optional<AttributeSet> ca = AttrsOf(*children[i], schema);
    if (!ca.has_value()) return nullptr;
    child_attrs[i] = *ca;
  }

  const std::vector<uint32_t> masks = SubsetMasks(k);
  SubPlanTable table = BuildAndSubPlans(node, attrs, child_attrs, masks);
  PruneDominated(&table);

  // A single sub-plan covering every child is a pure mediator-selection
  // chain: exact under set semantics in both combination modes.
  PlanPtr best_single;
  const auto full_it = table.find(universe);
  if (full_it != table.end()) {
    for (const SubPlan& sub : full_it->second) {
      best_single = CheaperOf(best_single, sub.plan, source_->cost_model());
    }
  }

  // Step 2 (lines 14-20): choose the min-cost set of sub-plans covering all
  // children (MCSC), combining with mediator intersection.
  PlanPtr combined;
  if (!options_.safe_combination) {
    // The paper's semantics: intersect projections to A directly.
    combined = CombineSubPlans(table, universe, /*intersect=*/true);
  } else {
    // Safe mode (DESIGN.md): intersected sub-plans must carry
    // A + Attr(Cond(n)) so the intersection of projections is exact; the
    // mediator projects back to A at the end.
    const std::optional<AttributeSet> cond_attrs = AttrsOf(*node, schema);
    if (cond_attrs.has_value()) {
      const AttributeSet augmented = attrs.Union(*cond_attrs);
      if (augmented == attrs) {
        combined = CombineSubPlans(table, universe, /*intersect=*/true);
      } else {
        SubPlanTable augmented_table =
            BuildAndSubPlans(node, augmented, child_attrs, masks);
        PruneDominated(&augmented_table);
        PlanPtr multi =
            CombineSubPlans(augmented_table, universe, /*intersect=*/true);
        if (multi != nullptr) {
          combined = PlanNode::MediatorSp(ConditionNode::True(), attrs,
                                          std::move(multi));
        }
      }
    }
  }
  return CheaperOf(best_single, combined, source_->cost_model());
}

}  // namespace gencompact
