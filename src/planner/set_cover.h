#ifndef GENCOMPACT_PLANNER_SET_COVER_H_
#define GENCOMPACT_PLANNER_SET_COVER_H_

#include <cstdint>
#include <vector>

namespace gencompact {

/// Minimum-Cost Set Cover (Section 6.4.2): choose a subset of candidates
/// whose covers union to `universe` with minimum total cost. Candidates may
/// overlap (overlapping covers are how IPG absorbs the copy rewrite rule).

struct SetCoverCandidate {
  uint32_t cover = 0;  ///< bitset over universe elements
  double cost = 0.0;
};

struct SetCoverResult {
  bool found = false;
  double cost = 0.0;
  std::vector<int> chosen;  ///< candidate indices
  bool optimal = false;     ///< false when the greedy fallback produced it
};

enum class SetCoverAlgorithm {
  /// Exact DP over covered-element masks, O(2^k · Q) for k universe
  /// elements. Our improvement over the paper's enumeration (DESIGN.md).
  kSubsetDp,
  /// The paper's approach: enumerate all 2^Q candidate subsets. Exact;
  /// guarded to Q <= 25.
  kEnumerate,
  /// Classic cost-per-new-element greedy; not optimal, used as the
  /// fallback when guards trip and in bench_mcsc.
  kGreedy,
};

/// Solves MCSC. If the requested exact algorithm's guard trips
/// (kSubsetDp: > 20 universe elements; kEnumerate: > 25 candidates), falls
/// back to greedy and reports optimal = false.
SetCoverResult SolveMinCostSetCover(uint32_t universe,
                                    const std::vector<SetCoverCandidate>& candidates,
                                    SetCoverAlgorithm algorithm);

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_SET_COVER_H_
