#include "planner/planner.h"

#include "baselines/cnf_planner.h"
#include "baselines/disco_planner.h"
#include "baselines/dnf_planner.h"
#include "baselines/naive_planner.h"

namespace gencompact {

const char* StrategyName(Strategy strategy) {
  switch (strategy) {
    case Strategy::kGenCompact:
      return "GenCompact";
    case Strategy::kGenModular:
      return "GenModular";
    case Strategy::kCnf:
      return "CNF(Garlic)";
    case Strategy::kDnf:
      return "DNF";
    case Strategy::kDisco:
      return "DISCO";
    case Strategy::kNaive:
      return "Naive(full-relational)";
  }
  return "Unknown";
}

std::unique_ptr<PlannerStrategy> MakePlanner(Strategy strategy,
                                             SourceHandle* source) {
  switch (strategy) {
    case Strategy::kGenCompact:
      return std::make_unique<GenCompactPlanner>(source);
    case Strategy::kGenModular:
      return std::make_unique<GenModularPlanner>(source);
    case Strategy::kCnf:
      return std::make_unique<CnfPlanner>(source);
    case Strategy::kDnf:
      return std::make_unique<DnfPlanner>(source);
    case Strategy::kDisco:
      return std::make_unique<DiscoPlanner>(source);
    case Strategy::kNaive:
      return std::make_unique<NaivePlanner>(source);
  }
  return nullptr;
}

}  // namespace gencompact
