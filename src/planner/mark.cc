#include "planner/mark.h"

namespace gencompact {

MarkedTree::MarkedTree(const ConditionPtr& root, Checker* checker) {
  Mark(root, checker);
}

void MarkedTree::Mark(const ConditionPtr& node, Checker* checker) {
  exports_[node.get()] = checker->Check(*node);
  for (const ConditionPtr& child : node->children()) {
    Mark(child, checker);
  }
}

const std::vector<AttributeSet>& MarkedTree::ExportsOf(
    const ConditionNode* node) const {
  static const std::vector<AttributeSet>& kEmpty =
      *new std::vector<AttributeSet>();
  const auto it = exports_.find(node);
  return it != exports_.end() ? it->second : kEmpty;
}

bool MarkedTree::CanExport(const ConditionNode* node,
                           const AttributeSet& attrs) const {
  for (const AttributeSet& exported : ExportsOf(node)) {
    if (attrs.IsSubsetOf(exported)) return true;
  }
  return false;
}

}  // namespace gencompact
