#ifndef GENCOMPACT_PLANNER_JOIN_ENUM_H_
#define GENCOMPACT_PLANNER_JOIN_ENUM_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

namespace gencompact {

/// Cost-level view of one equi-join edge of the query graph. The ends `a`
/// and `b` are relation indices; `selectivity` is the row-count multiplier
/// the edge applies when both ends are in one subset (∏ base rows ×
/// ∏ internal-edge selectivities = estimated subset rows). The bind fields
/// describe fetching one end as a bound value-list query driven by the
/// other end: `bind_a` means relation `a` accepts the value-list shape on
/// this edge's key (probed against its Checker), `bind_a_setup` is the
/// effective per-batch k1 (health penalty folded in) and `bind_a_per_row`
/// its k2.
struct JoinEdge {
  int a = 0;
  int b = 0;
  double selectivity = 1.0;
  /// Distinct join-key values on each end (≥ 1), from table statistics.
  double a_ndv = 1.0;
  double b_ndv = 1.0;
  bool bind_a = false;
  bool bind_b = false;
  double bind_a_setup = 0.0;
  double bind_b_setup = 0.0;
  double bind_a_per_row = 0.0;
  double bind_b_per_row = 0.0;
};

/// The cost-level query graph the enumerator searches: everything about the
/// federation reduced to numbers, so the search is decoupled from catalogs,
/// planners, and checkers (and an oracle can brute-force the same space).
struct JoinGraph {
  /// Independent-fetch cost per relation: the validated GenCompact plan's
  /// PlanCost (health penalties, paging cost, and the truncation-risk
  /// multiplier all folded in). Negative = the source cannot answer its
  /// pushdown unbound; the relation is only reachable via a bind edge.
  std::vector<double> fetch_cost;
  /// Estimated rows after per-source pushdown.
  std::vector<double> rows;
  std::vector<JoinEdge> edges;
  /// Distinct driving-side values per bound value-list batch.
  size_t bind_batch_size = 8;

  size_t size() const { return fetch_cost.size(); }
};

/// Per-edge strategy: fetch both subtrees independently and hash-join at
/// the mediator, or drive the (single-relation) right side as a bind-join —
/// one bound value-list query per batch of distinct left join values.
enum class EdgeMethod { kIndependent, kBind };
const char* EdgeMethodName(EdgeMethod method);

/// One PlanTable entry: the best join tree found for a connected subset,
/// keyed by its bitmask. Leaves have left == right == 0.
struct SubsetPlan {
  uint64_t set = 0;
  double cost = std::numeric_limits<double>::infinity();
  double rows = 0.0;
  uint64_t left = 0;
  uint64_t right = 0;
  EdgeMethod method = EdgeMethod::kIndependent;
  /// kBind: the bound relation (right is its singleton set) and the edge
  /// (index into JoinGraph::edges) whose key drives the value lists.
  int bind_relation = -1;
  int bind_edge = -1;

  bool feasible() const { return cost < std::numeric_limits<double>::infinity(); }
};

struct JoinEnumStats {
  size_t subsets_expanded = 0;   ///< PlanTable entries materialized
  size_t plans_considered = 0;   ///< (left, right, method) candidates costed
  bool used_greedy = false;      ///< DP threshold exceeded (or forced)
};

/// Join-order search over a JoinGraph.
///
/// kDp: dynamic programming over *connected* subgraphs — a DPccp-style
/// PlanTable keyed by subset bitmask, exact over the modeled cost space
/// (3^n subset decompositions, fine up to the dp_max_relations threshold).
/// kGreedy: greedy operator ordering — start from singleton components and
/// repeatedly take the cheapest feasible merge; linear in edges per round.
/// kLeftDeep: the naive baseline — fold relations in index (FROM) order
/// into a left-deep chain, choosing only the per-step method. Used by the
/// bench as the "no enumeration" strawman.
class JoinEnumerator {
 public:
  enum class Mode { kDp, kGreedy, kLeftDeep };

  struct Options {
    Mode mode = Mode::kDp;
    /// Above this many relations kDp falls back to greedy (DP is 3^n).
    size_t dp_max_relations = 12;
  };

  struct Result {
    bool feasible = false;
    SubsetPlan best;
    /// Every subset expanded (DP mode: all connected subsets; greedy /
    /// left-deep: the merge path), keyed by bitmask — the execution walker
    /// and tests read decompositions out of this table.
    std::unordered_map<uint64_t, SubsetPlan> table;
    JoinEnumStats stats;
  };

  static Result Enumerate(const JoinGraph& graph, const Options& options);
  static Result Enumerate(const JoinGraph& graph) {
    return Enumerate(graph, Options());
  }

  // ---- Shared cost primitives. The exhaustive-oracle test calls these
  // ---- directly, so the differential tests the *search* (subset
  // ---- enumeration, connectivity, canonicalization), not the arithmetic.

  /// Estimated rows of a joined subset: ∏ member base rows × ∏ selectivity
  /// of edges internal to the subset. Decomposition-independent.
  static double SubsetRows(const JoinGraph& graph, uint64_t set);

  /// True iff `set` induces a connected subgraph (singletons are connected).
  static bool Connected(const JoinGraph& graph, uint64_t set);

  /// True iff some edge crosses between the two (disjoint) subsets.
  static bool HasCrossEdge(const JoinGraph& graph, uint64_t s1, uint64_t s2);

  /// Cost of joining independently-produced subtrees: the join itself is
  /// mediator-local, so the modeled cost is just both inputs' costs.
  static double IndependentCost(double left_cost, double right_cost) {
    return left_cost + right_cost;
  }

  /// Cheapest way to fetch relation `r` as a bind-join driven by the
  /// finished subset `s1` (cost `s1_cost`, estimated `s1_rows` rows):
  /// minimum over crossing edges that allow binding `r`, charging one
  /// bound batch setup per ceil(distinct / bind_batch_size) value chunk
  /// plus per-row transfer of the estimated matches. Returns infinity cost
  /// when no crossing edge can bind `r`.
  struct BindChoice {
    double cost = std::numeric_limits<double>::infinity();
    int edge = -1;
    bool feasible() const {
      return cost < std::numeric_limits<double>::infinity();
    }
  };
  static BindChoice BestBindCost(const JoinGraph& graph, uint64_t s1,
                                 double s1_rows, double s1_cost, int r);

 private:
  static Result EnumerateDp(const JoinGraph& graph, JoinEnumStats stats);
  static Result EnumerateGreedy(const JoinGraph& graph, JoinEnumStats stats);
  static Result EnumerateLeftDeep(const JoinGraph& graph, JoinEnumStats stats);
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_JOIN_ENUM_H_
