#ifndef GENCOMPACT_PLANNER_CHILD_SUBSETS_H_
#define GENCOMPACT_PLANNER_CHILD_SUBSETS_H_

#include <cassert>
#include <cstdint>

#include "expr/condition.h"

namespace gencompact {

/// The condition AND(N) / OR(N) for a subset `mask` of `parent`'s children
/// (bit i selects child i), preserving child order. A singleton subset is
/// the child itself; `mask` must be non-empty.
inline ConditionPtr ChildSubsetCondition(const ConditionNode& parent,
                                         uint32_t mask) {
  assert(mask != 0);
  std::vector<ConditionPtr> selected;
  const std::vector<ConditionPtr>& children = parent.children();
  for (size_t i = 0; i < children.size(); ++i) {
    if (mask >> i & 1) selected.push_back(children[i]);
  }
  return ConditionNode::Connector(parent.kind(), std::move(selected));
}

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_CHILD_SUBSETS_H_
