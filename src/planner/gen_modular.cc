#include "planner/gen_modular.h"

namespace gencompact {

Result<PlanPtr> GenModularPlanner::Plan(const ConditionPtr& condition,
                                        const AttributeSet& attrs) {
  stats_ = RunStats();

  // Rewrite module: equivalent CTs under commutative / associative /
  // distributive / copy rules (budgeted closure).
  const RewriteResult rewrites = GenerateRewritings(condition, options_.rewrite);
  stats_.num_cts = rewrites.cts.size();
  stats_.rewrite_budget_exhausted = rewrites.budget_exhausted;

  // Generate + cost modules: EPG per CT, then resolve the Choice spaces.
  Epg epg(source_, options_.epg);
  const CostModel& cost_model = source_->cost_model();
  PlanPtr best;
  double best_cost = 0;
  for (const ConditionPtr& ct : rewrites.cts) {
    const PlanPtr space = epg.Generate(ct, attrs);
    if (space == nullptr) continue;
    PlanPtr resolved = cost_model.ResolveChoices(space);
    const double cost = cost_model.PlanCost(*resolved);
    if (best == nullptr || cost < best_cost) {
      best = std::move(resolved);
      best_cost = cost;
    }
  }
  stats_.epg_calls = epg.num_calls();
  stats_.epg_incomplete = epg.incomplete();
  stats_.best_cost = best_cost;

  if (best == nullptr) {
    return Status::NoFeasiblePlan("GenModular: no feasible plan for SP(" +
                                  condition->ToString() + ")");
  }
  return best;
}

Result<PlanPtr> GenModularPlanner::PlanAvoiding(const ConditionPtr& condition,
                                                const AttributeSet& attrs,
                                                const SubQueryAvoidSet& avoid) {
  if (avoid.empty()) return Plan(condition, attrs);
  const RewriteResult rewrites = GenerateRewritings(condition, options_.rewrite);
  Epg epg(source_, options_.epg);
  const CostModel& cost_model = source_->cost_model();
  PlanPtr best;
  double best_cost = 0;
  for (const ConditionPtr& ct : rewrites.cts) {
    const PlanPtr space = epg.Generate(ct, attrs);
    if (space == nullptr) continue;
    PlanPtr resolved = cost_model.ResolveChoicesAvoiding(space, avoid);
    if (resolved == nullptr) continue;  // every alternative is avoided
    const double cost = cost_model.PlanCost(*resolved);
    if (best == nullptr || cost < best_cost) {
      best = std::move(resolved);
      best_cost = cost;
    }
  }
  if (best == nullptr) {
    return Status::NoFeasiblePlan(
        "GenModular: no feasible plan for SP(" + condition->ToString() +
        ") avoiding " + std::to_string(avoid.size()) +
        " failed sub-quer" + (avoid.size() == 1 ? "y" : "ies"));
  }
  return best;
}

}  // namespace gencompact
