#include "planner/gen_compact.h"

#include "expr/canonical.h"
#include "planner/epg.h"

namespace gencompact {
namespace {

/// The canonical CTs GenCompact plans over: the distributive closure when
/// rewrites are enabled, the canonical condition alone otherwise.
std::vector<ConditionPtr> ReducedCts(const ConditionPtr& condition,
                                     const GenCompactOptions& options,
                                     bool* budget_exhausted) {
  const ConditionPtr canonical = Canonicalize(condition);
  if (!options.distributive_rewrites) return {canonical};
  RewriteOptions rewrite_options;
  rewrite_options.rules = RewriteRuleSet::DistributiveOnly();
  rewrite_options.max_cts = options.max_cts;
  rewrite_options.canonicalize = true;
  RewriteResult rewrites = GenerateRewritings(canonical, rewrite_options);
  if (budget_exhausted != nullptr) {
    *budget_exhausted = rewrites.budget_exhausted;
  }
  return std::move(rewrites.cts);
}

}  // namespace

Result<PlanPtr> GenCompactPlanner::Plan(const ConditionPtr& condition,
                                        const AttributeSet& attrs) {
  stats_ = RunStats();

  const std::vector<ConditionPtr> cts =
      ReducedCts(condition, options_, &stats_.rewrite_budget_exhausted);
  stats_.num_cts = cts.size();

  Ipg ipg(source_, options_.ipg);
  const CostModel& cost_model = source_->cost_model();
  PlanPtr best;
  double best_cost = 0;
  for (const ConditionPtr& ct : cts) {
    PlanPtr plan = ipg.Plan(ct, attrs);
    if (plan == nullptr) continue;
    const double cost = cost_model.PlanCost(*plan);
    if (best == nullptr || cost < best_cost) {
      best = std::move(plan);
      best_cost = cost;
    }
  }
  stats_.ipg = ipg.stats();
  stats_.best_cost = best_cost;

  if (best == nullptr) {
    return Status::NoFeasiblePlan("GenCompact: no feasible plan for SP(" +
                                  condition->ToString() + ")");
  }
  return best;
}

Result<PlanPtr> GenCompactPlanner::PlanAvoiding(const ConditionPtr& condition,
                                                const AttributeSet& attrs,
                                                const SubQueryAvoidSet& avoid) {
  if (avoid.empty()) return Plan(condition, attrs);
  const std::vector<ConditionPtr> cts =
      ReducedCts(condition, options_, nullptr);
  Epg epg(source_);
  const CostModel& cost_model = source_->cost_model();
  PlanPtr best;
  double best_cost = 0;
  for (const ConditionPtr& ct : cts) {
    const PlanPtr space = epg.Generate(ct, attrs);
    if (space == nullptr) continue;
    PlanPtr resolved = cost_model.ResolveChoicesAvoiding(space, avoid);
    if (resolved == nullptr) continue;
    const double cost = cost_model.PlanCost(*resolved);
    if (best == nullptr || cost < best_cost) {
      best = std::move(resolved);
      best_cost = cost;
    }
  }
  if (best == nullptr) {
    return Status::NoFeasiblePlan(
        "GenCompact: no feasible plan for SP(" + condition->ToString() +
        ") avoiding " + std::to_string(avoid.size()) +
        " failed sub-quer" + (avoid.size() == 1 ? "y" : "ies"));
  }
  return best;
}

}  // namespace gencompact
