#include "planner/gen_compact.h"

#include "expr/canonical.h"

namespace gencompact {

Result<PlanPtr> GenCompactPlanner::Plan(const ConditionPtr& condition,
                                        const AttributeSet& attrs) {
  stats_ = RunStats();

  const ConditionPtr canonical = Canonicalize(condition);

  std::vector<ConditionPtr> cts;
  if (options_.distributive_rewrites) {
    RewriteOptions rewrite_options;
    rewrite_options.rules = RewriteRuleSet::DistributiveOnly();
    rewrite_options.max_cts = options_.max_cts;
    rewrite_options.canonicalize = true;  // IPG consumes canonical CTs
    const RewriteResult rewrites = GenerateRewritings(canonical, rewrite_options);
    cts = rewrites.cts;
    stats_.rewrite_budget_exhausted = rewrites.budget_exhausted;
  } else {
    cts = {canonical};
  }
  stats_.num_cts = cts.size();

  Ipg ipg(source_, options_.ipg);
  const CostModel& cost_model = source_->cost_model();
  PlanPtr best;
  double best_cost = 0;
  for (const ConditionPtr& ct : cts) {
    PlanPtr plan = ipg.Plan(ct, attrs);
    if (plan == nullptr) continue;
    const double cost = cost_model.PlanCost(*plan);
    if (best == nullptr || cost < best_cost) {
      best = std::move(plan);
      best_cost = cost;
    }
  }
  stats_.ipg = ipg.stats();
  stats_.best_cost = best_cost;

  if (best == nullptr) {
    return Status::NoFeasiblePlan("GenCompact: no feasible plan for SP(" +
                                  condition->ToString() + ")");
  }
  return best;
}

}  // namespace gencompact
