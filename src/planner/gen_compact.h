#ifndef GENCOMPACT_PLANNER_GEN_COMPACT_H_
#define GENCOMPACT_PLANNER_GEN_COMPACT_H_

#include "planner/ipg.h"
#include "planner/strategy.h"
#include "rewrite/rewrite_engine.h"

namespace gencompact {

struct GenCompactOptions {
  IpgOptions ipg;

  /// GenCompact's reduced rewrite module fires only the distributive rule
  /// (Section 6.1); commutativity lives in the description closure (applied
  /// by SourceHandle) and associativity/copy are absorbed by IPG. Disabling
  /// restricts planning to the original canonical CT.
  bool distributive_rewrites = true;

  /// Budget on the number of (canonicalized, deduplicated) CTs explored.
  size_t max_cts = 64;
};

/// GenCompact (Section 6): the paper's primary contribution. For each
/// canonical CT produced by the reduced rewrite module, IPG returns the
/// single best feasible plan; the overall best is returned.
class GenCompactPlanner : public PlannerStrategy {
 public:
  explicit GenCompactPlanner(SourceHandle* source, GenCompactOptions options = {})
      : source_(source), options_(options) {}

  std::string name() const override { return "GenCompact"; }

  Result<PlanPtr> Plan(const ConditionPtr& condition,
                       const AttributeSet& attrs) override;

  /// Constrained planning for fault recovery. IPG returns only the single
  /// best plan, so the avoidance path switches to EPG's Choice plan space
  /// over the same reduced CT set and picks the cheapest alternative that
  /// routes around every avoided sub-query. Slower than Plan(), but this
  /// only runs after a sub-query has already failed its retries.
  Result<PlanPtr> PlanAvoiding(const ConditionPtr& condition,
                               const AttributeSet& attrs,
                               const SubQueryAvoidSet& avoid) override;

  struct RunStats {
    size_t num_cts = 0;
    IpgStats ipg;
    bool rewrite_budget_exhausted = false;
    double best_cost = 0.0;
  };
  const RunStats& stats() const { return stats_; }

 private:
  SourceHandle* source_;
  GenCompactOptions options_;
  RunStats stats_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_GEN_COMPACT_H_
