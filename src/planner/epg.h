#ifndef GENCOMPACT_PLANNER_EPG_H_
#define GENCOMPACT_PLANNER_EPG_H_

#include <unordered_map>

#include "plan/plan.h"
#include "plan/sub_query_key.h"
#include "planner/source_handle.h"

namespace gencompact {

/// Options for the Exhaustive Plan Generator.
struct EpgOptions {
  /// ∧ nodes with more children than this get only the full-set and
  /// singleton child-subset decompositions (2^k guard); the run is then
  /// reported incomplete.
  size_t max_and_children = 12;

  /// Consider the download plan at every node, not only at ∨ nodes as in
  /// the paper's Algorithm 5.1 listing (documented deviation; IPG considers
  /// it everywhere, and EPG must match for the equivalence tests).
  bool download_at_every_node = true;
};

/// EPG, Algorithm 5.1: computes the set of all feasible plans for
/// SP(n, A, R) as a Choice plan-space (an AND/OR DAG — results are memoized
/// on (node, attrs), so sub-spaces are shared). Returns nullptr when no
/// feasible plan exists (the paper's ε).
class Epg {
 public:
  explicit Epg(SourceHandle* source, EpgOptions options = {})
      : source_(source), options_(options) {}

  /// Plan space for SP(node, attrs, R), or nullptr.
  PlanPtr Generate(const ConditionPtr& node, const AttributeSet& attrs);

  /// True if some ∧ node exceeded max_and_children and the space is
  /// therefore only partially enumerated.
  bool incomplete() const { return incomplete_; }

  size_t num_calls() const { return num_calls_; }

 private:
  PlanPtr GenerateUncached(const ConditionPtr& node, const AttributeSet& attrs);

  SourceHandle* source_;
  EpgOptions options_;
  // (ConditionId, attrs) — interned identity, shared sub-spaces across
  // structurally equal subtrees regardless of which CT produced them.
  std::unordered_map<SubQueryKey, PlanPtr, SubQueryKeyHash> memo_;
  bool incomplete_ = false;
  size_t num_calls_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_EPG_H_
