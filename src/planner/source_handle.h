#ifndef GENCOMPACT_PLANNER_SOURCE_HANDLE_H_
#define GENCOMPACT_PLANNER_SOURCE_HANDLE_H_

#include <memory>

#include "cost/cost_model.h"
#include "ssdl/check.h"
#include "ssdl/closure.h"
#include "storage/table.h"
#include "storage/table_stats.h"

namespace gencompact {

/// Everything the planners need to plan against one source: the (optionally
/// commutativity-closed) SSDL description with its Checker, table statistics,
/// and the per-source cost model. Owns all of it, so planners and baselines
/// just take a SourceHandle*.
class SourceHandle {
 public:
  /// `table` must outlive the handle; statistics are computed here.
  /// When `apply_commutativity_closure` is set (the default — GenCompact's
  /// Section 6.1 description rewriting), the stored description is the
  /// closure of `description`.
  SourceHandle(SourceDescription description, const Table* table,
               bool apply_commutativity_closure = true,
               double mediator_k3 = 0.0);

  /// Variant with an injected cardinality estimator (tests / what-if).
  SourceHandle(SourceDescription description, const Table* table,
               std::unique_ptr<CardinalityEstimator> estimator,
               bool apply_commutativity_closure = true,
               double mediator_k3 = 0.0);

  SourceHandle(const SourceHandle&) = delete;
  SourceHandle& operator=(const SourceHandle&) = delete;

  const SourceDescription& description() const { return description_; }
  const Schema& schema() const { return description_.schema(); }
  const Table* table() const { return table_; }
  const TableStats& stats() const { return stats_; }

  Checker* checker() { return checker_.get(); }
  const CostModel& cost_model() const { return *cost_model_; }

  /// Mutable access for post-construction wiring (the catalog entry
  /// attaches its HealthPenalty here); not for changing k1/k2 mid-flight.
  CostModel* mutable_cost_model() { return cost_model_.get(); }

 private:
  SourceDescription description_;
  const Table* table_;
  TableStats stats_;
  std::unique_ptr<CardinalityEstimator> estimator_;
  std::unique_ptr<Checker> checker_;
  std::unique_ptr<CostModel> cost_model_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_SOURCE_HANDLE_H_
