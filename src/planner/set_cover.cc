#include "planner/set_cover.h"

#include <algorithm>
#include <bit>
#include <limits>

namespace gencompact {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

SetCoverResult SolveGreedy(uint32_t universe,
                           const std::vector<SetCoverCandidate>& candidates) {
  SetCoverResult result;
  uint32_t covered = 0;
  while (covered != universe) {
    int best = -1;
    double best_ratio = kInf;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const uint32_t gain = candidates[i].cover & universe & ~covered;
      if (gain == 0) continue;
      const double ratio =
          candidates[i].cost / static_cast<double>(std::popcount(gain));
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) return SetCoverResult{};  // uncoverable
    covered |= candidates[best].cover & universe;
    result.cost += candidates[best].cost;
    result.chosen.push_back(best);
  }
  result.found = true;
  result.optimal = false;
  return result;
}

SetCoverResult SolveSubsetDp(uint32_t universe,
                             const std::vector<SetCoverCandidate>& candidates) {
  // Compress universe bits to a dense 0..k-1 index space.
  std::vector<int> element_bits;
  for (int b = 0; b < 32; ++b) {
    if (universe >> b & 1) element_bits.push_back(b);
  }
  const size_t k = element_bits.size();
  const size_t masks = size_t{1} << k;

  const auto compress = [&](uint32_t cover) {
    uint32_t dense = 0;
    for (size_t i = 0; i < k; ++i) {
      if (cover >> element_bits[i] & 1) dense |= uint32_t{1} << i;
    }
    return dense;
  };
  std::vector<uint32_t> dense_covers(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    dense_covers[i] = compress(candidates[i].cover);
  }

  // dp[S] = min cost to cover (at least) S; parent pointers for recovery.
  std::vector<double> dp(masks, kInf);
  std::vector<int> via_candidate(masks, -1);
  std::vector<uint32_t> via_prev(masks, 0);
  dp[0] = 0;
  for (uint32_t s = 0; s < masks; ++s) {
    if (dp[s] == kInf) continue;
    if (s + 1 == masks) break;
    // Cover the lowest missing element; trying only candidates that cover
    // it is sufficient and avoids redundant transitions.
    const uint32_t missing = static_cast<uint32_t>(
        std::countr_zero(~s & (static_cast<uint32_t>(masks) - 1)));
    for (size_t i = 0; i < candidates.size(); ++i) {
      if ((dense_covers[i] >> missing & 1) == 0) continue;
      const uint32_t next = s | dense_covers[i];
      const double cost = dp[s] + candidates[i].cost;
      if (cost < dp[next]) {
        dp[next] = cost;
        via_candidate[next] = static_cast<int>(i);
        via_prev[next] = s;
      }
    }
  }

  const uint32_t full = static_cast<uint32_t>(masks) - 1;
  if (dp[full] == kInf) return SetCoverResult{};
  SetCoverResult result;
  result.found = true;
  result.optimal = true;
  result.cost = dp[full];
  uint32_t s = full;
  while (s != 0) {
    result.chosen.push_back(via_candidate[s]);
    s = via_prev[s];
  }
  std::reverse(result.chosen.begin(), result.chosen.end());
  return result;
}

SetCoverResult SolveEnumerate(uint32_t universe,
                              const std::vector<SetCoverCandidate>& candidates) {
  const size_t q = candidates.size();
  const uint64_t subsets = uint64_t{1} << q;
  SetCoverResult best;
  for (uint64_t pick = 1; pick < subsets; ++pick) {
    uint32_t covered = 0;
    double cost = 0;
    for (size_t i = 0; i < q; ++i) {
      if (pick >> i & 1) {
        covered |= candidates[i].cover;
        cost += candidates[i].cost;
      }
    }
    if ((covered & universe) != universe) continue;
    if (!best.found || cost < best.cost) {
      best.found = true;
      best.cost = cost;
      best.chosen.clear();
      for (size_t i = 0; i < q; ++i) {
        if (pick >> i & 1) best.chosen.push_back(static_cast<int>(i));
      }
    }
  }
  best.optimal = best.found;
  return best;
}

}  // namespace

SetCoverResult SolveMinCostSetCover(
    uint32_t universe, const std::vector<SetCoverCandidate>& candidates,
    SetCoverAlgorithm algorithm) {
  if (universe == 0) {
    SetCoverResult result;
    result.found = true;
    result.optimal = true;
    return result;
  }
  if (candidates.empty()) return SetCoverResult{};
  switch (algorithm) {
    case SetCoverAlgorithm::kSubsetDp:
      if (std::popcount(universe) > 20) {
        return SolveGreedy(universe, candidates);
      }
      return SolveSubsetDp(universe, candidates);
    case SetCoverAlgorithm::kEnumerate:
      if (candidates.size() > 25) {
        return SolveGreedy(universe, candidates);
      }
      return SolveEnumerate(universe, candidates);
    case SetCoverAlgorithm::kGreedy:
      return SolveGreedy(universe, candidates);
  }
  return SetCoverResult{};
}

}  // namespace gencompact
