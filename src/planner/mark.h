#ifndef GENCOMPACT_PLANNER_MARK_H_
#define GENCOMPACT_PLANNER_MARK_H_

#include <unordered_map>
#include <vector>

#include "expr/condition.h"
#include "ssdl/check.h"

namespace gencompact {

/// GenModular's mark module (Section 5.2): for each node n of a CT, the set
/// of attributes the source exports when asked to evaluate Cond(n) — here a
/// family of maximal sets, matching Checker semantics. Every node is marked,
/// even below supported ancestors, because any part of the CT may be
/// evaluated at the source.
class MarkedTree {
 public:
  /// Marks all nodes of `root` using `checker`.
  MarkedTree(const ConditionPtr& root, Checker* checker);

  /// Export family of `node` (must belong to the marked tree).
  const std::vector<AttributeSet>& ExportsOf(const ConditionNode* node) const;

  /// True iff some exported set of `node` contains `attrs`.
  bool CanExport(const ConditionNode* node, const AttributeSet& attrs) const;

  size_t num_nodes() const { return exports_.size(); }

 private:
  void Mark(const ConditionPtr& node, Checker* checker);

  std::unordered_map<const ConditionNode*, std::vector<AttributeSet>> exports_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_MARK_H_
