#ifndef GENCOMPACT_PLANNER_IPG_H_
#define GENCOMPACT_PLANNER_IPG_H_

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "plan/plan.h"
#include "plan/sub_query_key.h"
#include "planner/set_cover.h"
#include "planner/source_handle.h"

namespace gencompact {

/// Options for the Integrated Plan Generator (Section 6.4).
struct IpgOptions {
  // Pruning rules (Section 6.3). All on by default; the ablation benchmark
  // toggles them. Disabling never changes the returned optimum (invariant 3
  // of DESIGN.md), only the work done.
  bool pr1 = true;  ///< pure plan prunes the impure search
  bool pr2 = true;  ///< keep only the cheapest plan per sub-query
  bool pr3 = true;  ///< prune dominated sub-plans

  /// Safe ∧-combination mode (DESIGN.md): sub-plans intersected at an ∧
  /// node fetch A ∪ Attr(Cond(n)) so that the intersection of projections
  /// is provably exact, with a final mediator projection to A. When false,
  /// combinations follow the paper verbatim (strict_paper_mode).
  bool safe_combination = true;

  SetCoverAlgorithm mcsc = SetCoverAlgorithm::kSubsetDp;

  /// Nodes with more children than this get only singleton + full-set
  /// decompositions (2^k guard); the run is reported incomplete.
  size_t max_subset_children = 14;
};

struct IpgStats {
  size_t calls = 0;               ///< IPG invocations (including memo hits)
  size_t mcsc_invocations = 0;
  size_t max_subplans = 0;        ///< largest Q handed to MCSC
  size_t total_subplans = 0;      ///< sub-plans materialized across the run
  bool incomplete = false;        ///< a guard tripped somewhere
};

/// IPG (Algorithm 6.1 + Figures 5 and 6): returns the single best feasible
/// plan for SP(n, A, R) on a canonical CT, or nullptr if none exists.
/// Results are memoized on (node, attrs).
class Ipg {
 public:
  explicit Ipg(SourceHandle* source, IpgOptions options = {})
      : source_(source), options_(options) {}

  /// Best feasible plan for SP(node, attrs, R); nullptr if infeasible.
  /// `node` should be canonical (see Canonicalize); non-canonical input is
  /// accepted but explores a smaller space.
  PlanPtr Plan(const ConditionPtr& node, const AttributeSet& attrs);

  const IpgStats& stats() const { return stats_; }

 private:
  // A candidate sub-plan covering a set of children.
  struct SubPlan {
    PlanPtr plan;
    double cost = 0.0;
    bool pure = false;  ///< a direct source query for exactly its cover
  };
  // Sub-plan table: children-mask -> candidates (a single cheapest entry
  // when PR2 is on).
  using SubPlanTable = std::map<uint32_t, std::vector<SubPlan>>;

  PlanPtr PlanUncached(const ConditionPtr& node, const AttributeSet& attrs);
  PlanPtr PlanOrNode(const ConditionPtr& node, const AttributeSet& attrs);
  PlanPtr PlanAndNode(const ConditionPtr& node, const AttributeSet& attrs);

  /// Figure 6 step 1 for an ∧ node: the sub-plan table over child subsets,
  /// with every sub-plan projecting to `work_attrs`.
  SubPlanTable BuildAndSubPlans(const ConditionPtr& node,
                                const AttributeSet& work_attrs,
                                const std::vector<AttributeSet>& child_attrs,
                                const std::vector<uint32_t>& masks);

  /// The download-and-postprocess plan (Algorithm 6.1's plan_impure), or
  /// nullptr if downloading is not feasible.
  PlanPtr DownloadPlan(const ConditionPtr& node, const AttributeSet& attrs);

  void AddSubPlan(SubPlanTable* table, uint32_t mask, PlanPtr plan, bool pure);

  /// PR3: drops sub-plans dominated by a cheaper-or-equal sub-plan covering
  /// a strict superset of children.
  void PruneDominated(SubPlanTable* table) const;

  /// Child-subset masks to enumerate for a node with `k` children,
  /// respecting the 2^k guard.
  std::vector<uint32_t> SubsetMasks(size_t k);

  /// MCSC combination step shared by ∧ and ∨ nodes. Returns the cheapest
  /// combined plan (Union for ∨, Intersect for ∧) or nullptr.
  PlanPtr CombineSubPlans(const SubPlanTable& table, uint32_t universe,
                          bool intersect);

  double Cost(const PlanNode& plan) const {
    return source_->cost_model().PlanCost(plan);
  }

  SourceHandle* source_;
  IpgOptions options_;
  IpgStats stats_;
  // Keyed by (ConditionId, attrs): interning makes structurally equal
  // subtrees share one id, so the memo hits across the distributive CT
  // rewritings that share sub-conditions, not just on pointer reuse.
  std::unordered_map<SubQueryKey, PlanPtr, SubQueryKeyHash> memo_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_IPG_H_
