#ifndef GENCOMPACT_PLANNER_GEN_MODULAR_H_
#define GENCOMPACT_PLANNER_GEN_MODULAR_H_

#include "planner/epg.h"
#include "planner/strategy.h"
#include "rewrite/rewrite_engine.h"

namespace gencompact {

struct GenModularOptions {
  RewriteOptions rewrite;  // all four rule families by default
  EpgOptions epg;
};

/// GenModular (Section 5): the naive exhaustive scheme —
/// rewrite → mark → generate (EPG) → cost. Kept as the reference
/// implementation: it defines the plan space GenCompact must match, and it
/// is the baseline of the plan-generation-efficiency experiment (E3).
///
/// Marking is implicit here: EPG consults the memoizing Checker directly,
/// which computes exactly the export marks of Section 5.2 on demand (the
/// standalone MarkedTree is exercised by tests).
class GenModularPlanner : public PlannerStrategy {
 public:
  explicit GenModularPlanner(SourceHandle* source, GenModularOptions options = {})
      : source_(source), options_(options) {}

  std::string name() const override { return "GenModular"; }

  Result<PlanPtr> Plan(const ConditionPtr& condition,
                       const AttributeSet& attrs) override;

  /// Constrained planning for fault recovery: resolves each CT's EPG Choice
  /// space to the cheapest alternative containing no avoided sub-query.
  Result<PlanPtr> PlanAvoiding(const ConditionPtr& condition,
                               const AttributeSet& attrs,
                               const SubQueryAvoidSet& avoid) override;

  struct RunStats {
    size_t num_cts = 0;
    size_t epg_calls = 0;
    bool rewrite_budget_exhausted = false;
    bool epg_incomplete = false;
    double best_cost = 0.0;
  };
  const RunStats& stats() const { return stats_; }

 private:
  SourceHandle* source_;
  GenModularOptions options_;
  RunStats stats_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_GEN_MODULAR_H_
