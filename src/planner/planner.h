#ifndef GENCOMPACT_PLANNER_PLANNER_H_
#define GENCOMPACT_PLANNER_PLANNER_H_

#include <memory>

#include "planner/gen_compact.h"
#include "planner/gen_modular.h"
#include "planner/strategy.h"

namespace gencompact {

/// Every plan-generation strategy in the library: the paper's two schemes
/// plus the contemporary-system baselines of Sections 1-2.
enum class Strategy {
  kGenCompact,  ///< Section 6 (the contribution)
  kGenModular,  ///< Section 5 (exhaustive reference)
  kCnf,         ///< Garlic-style CNF clause shipping
  kDnf,         ///< DNF per-disjunct shipping
  kDisco,       ///< all-or-nothing (whole condition or whole download)
  kNaive,       ///< assumes full relational capability (System R et al.)
};

const char* StrategyName(Strategy strategy);

/// Factory with default options per strategy. `source` must outlive the
/// returned planner.
std::unique_ptr<PlannerStrategy> MakePlanner(Strategy strategy,
                                             SourceHandle* source);

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_PLANNER_H_
