#ifndef GENCOMPACT_PLANNER_STRATEGY_H_
#define GENCOMPACT_PLANNER_STRATEGY_H_

#include <string>

#include "common/result.h"
#include "plan/plan.h"
#include "plan/plan_validator.h"
#include "plan/sub_query_key.h"
#include "planner/source_handle.h"

namespace gencompact {

/// Common interface of all plan-generation strategies (GenCompact,
/// GenModular, and the contemporary-system baselines of Section 2). A
/// strategy returns a resolved, feasible plan for the target query
/// SP(condition, attrs, R), or kNoFeasiblePlan.
class PlannerStrategy {
 public:
  virtual ~PlannerStrategy() = default;

  virtual std::string name() const = 0;

  /// Plans SP(condition, attrs, R) against this strategy's source.
  virtual Result<PlanPtr> Plan(const ConditionPtr& condition,
                               const AttributeSet& attrs) = 0;

  /// Plans SP(condition, attrs, R) with the constraint that the plan
  /// contains none of the sub-queries in `avoid` — the mediator's recovery
  /// path when specific SP(C, A, R) fetches keep failing (see DESIGN.md,
  /// "Failure semantics"). The base implementation plans normally and
  /// reports kNoFeasiblePlan if the result touches the avoid-set;
  /// capability-aware strategies override this to search their Choice plan
  /// space for the cheapest alternative that routes around the failures.
  virtual Result<PlanPtr> PlanAvoiding(const ConditionPtr& condition,
                                       const AttributeSet& attrs,
                                       const SubQueryAvoidSet& avoid) {
    GC_ASSIGN_OR_RETURN(PlanPtr plan, Plan(condition, attrs));
    if (!PlanAvoids(*plan, avoid)) {
      return Status::NoFeasiblePlan(
          name() + ": the only plan found uses an avoided sub-query");
    }
    return plan;
  }
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_STRATEGY_H_
