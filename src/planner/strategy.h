#ifndef GENCOMPACT_PLANNER_STRATEGY_H_
#define GENCOMPACT_PLANNER_STRATEGY_H_

#include <string>

#include "common/result.h"
#include "plan/plan.h"
#include "planner/source_handle.h"

namespace gencompact {

/// Common interface of all plan-generation strategies (GenCompact,
/// GenModular, and the contemporary-system baselines of Section 2). A
/// strategy returns a resolved, feasible plan for the target query
/// SP(condition, attrs, R), or kNoFeasiblePlan.
class PlannerStrategy {
 public:
  virtual ~PlannerStrategy() = default;

  virtual std::string name() const = 0;

  /// Plans SP(condition, attrs, R) against this strategy's source.
  virtual Result<PlanPtr> Plan(const ConditionPtr& condition,
                               const AttributeSet& attrs) = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_STRATEGY_H_
