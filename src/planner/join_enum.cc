#include "planner/join_enum.h"

#include <algorithm>
#include <cmath>

namespace gencompact {

const char* EdgeMethodName(EdgeMethod method) {
  switch (method) {
    case EdgeMethod::kIndependent:
      return "independent";
    case EdgeMethod::kBind:
      return "bind-join";
  }
  return "?";
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t LowestBit(uint64_t set) { return set & (~set + 1); }

}  // namespace

double JoinEnumerator::SubsetRows(const JoinGraph& graph, uint64_t set) {
  double rows = 1.0;
  for (size_t i = 0; i < graph.size(); ++i) {
    if ((set >> i) & 1u) rows *= std::max(graph.rows[i], 0.0);
  }
  for (const JoinEdge& e : graph.edges) {
    if (((set >> e.a) & 1u) && ((set >> e.b) & 1u)) rows *= e.selectivity;
  }
  return rows;
}

bool JoinEnumerator::Connected(const JoinGraph& graph, uint64_t set) {
  if (set == 0) return false;
  uint64_t reached = LowestBit(set);
  bool grew = true;
  while (grew) {
    grew = false;
    for (const JoinEdge& e : graph.edges) {
      const uint64_t a = uint64_t{1} << e.a;
      const uint64_t b = uint64_t{1} << e.b;
      if ((set & a) == 0 || (set & b) == 0) continue;
      if ((reached & a) != 0 && (reached & b) == 0) {
        reached |= b;
        grew = true;
      } else if ((reached & b) != 0 && (reached & a) == 0) {
        reached |= a;
        grew = true;
      }
    }
  }
  return reached == set;
}

bool JoinEnumerator::HasCrossEdge(const JoinGraph& graph, uint64_t s1,
                                  uint64_t s2) {
  for (const JoinEdge& e : graph.edges) {
    const uint64_t a = uint64_t{1} << e.a;
    const uint64_t b = uint64_t{1} << e.b;
    if (((s1 & a) && (s2 & b)) || ((s1 & b) && (s2 & a))) return true;
  }
  return false;
}

JoinEnumerator::BindChoice JoinEnumerator::BestBindCost(const JoinGraph& graph,
                                                        uint64_t s1,
                                                        double s1_rows,
                                                        double s1_cost, int r) {
  BindChoice best;
  if (s1_cost >= kInf) return best;
  const uint64_t r_bit = uint64_t{1} << r;
  const double batch = static_cast<double>(std::max<size_t>(
      graph.bind_batch_size, 1));
  for (size_t i = 0; i < graph.edges.size(); ++i) {
    const JoinEdge& e = graph.edges[i];
    double drive_ndv, bound_ndv, setup, per_row;
    bool bindable;
    if (e.b == r && ((s1 >> e.a) & 1u)) {
      bindable = e.bind_b;
      drive_ndv = e.a_ndv;
      bound_ndv = e.b_ndv;
      setup = e.bind_b_setup;
      per_row = e.bind_b_per_row;
    } else if (e.a == r && ((s1 >> e.b) & 1u)) {
      bindable = e.bind_a;
      drive_ndv = e.b_ndv;
      bound_ndv = e.a_ndv;
      setup = e.bind_a_setup;
      per_row = e.bind_a_per_row;
    } else {
      continue;
    }
    if (!bindable) continue;
    if ((s1 & r_bit) != 0) continue;
    // Distinct driving values: capped by both the driving subset's rows and
    // its key's distinct-value count.
    const double distinct =
        std::max(1.0, std::min(s1_rows, std::max(drive_ndv, 1.0)));
    const double batches = std::ceil(distinct / batch);
    // Matched rows shipped back: the bound relation's rows thinned to the
    // fraction of its key domain the value lists actually name.
    const double matched = std::max(graph.rows[r], 0.0) *
                           std::min(1.0, distinct / std::max(bound_ndv, 1.0));
    const double cost = s1_cost + batches * setup + per_row * matched;
    if (cost < best.cost) {
      best.cost = cost;
      best.edge = static_cast<int>(i);
    }
  }
  return best;
}

JoinEnumerator::Result JoinEnumerator::Enumerate(const JoinGraph& graph,
                                                 const Options& options) {
  JoinEnumStats stats;
  if (graph.size() == 0 || graph.size() > 63) return Result{};
  switch (options.mode) {
    case Mode::kGreedy:
      stats.used_greedy = true;
      return EnumerateGreedy(graph, stats);
    case Mode::kLeftDeep:
      return EnumerateLeftDeep(graph, stats);
    case Mode::kDp:
      if (graph.size() > options.dp_max_relations) {
        stats.used_greedy = true;
        return EnumerateGreedy(graph, stats);
      }
      return EnumerateDp(graph, stats);
  }
  return Result{};
}

JoinEnumerator::Result JoinEnumerator::EnumerateDp(const JoinGraph& graph,
                                                   JoinEnumStats stats) {
  Result result;
  const size_t n = graph.size();

  // Seed the leaves. An infeasible independent fetch keeps its entry (with
  // infinite cost): the relation is still *connected*, and still reachable
  // as the bound side of a bind edge, which never uses the leaf plan.
  for (size_t i = 0; i < n; ++i) {
    SubsetPlan leaf;
    leaf.set = uint64_t{1} << i;
    leaf.cost = graph.fetch_cost[i] >= 0.0 ? graph.fetch_cost[i] : kInf;
    leaf.rows = graph.rows[i];
    result.table.emplace(leaf.set, leaf);
    ++stats.subsets_expanded;
  }

  // Ascending bitmask order visits every proper subset before its superset.
  // Table membership doubles as the connectivity test: a subset has an
  // entry iff it decomposes into two connected halves joined by an edge —
  // exactly the csg-cmp-pair property DPccp enumerates.
  const uint64_t full = n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
  for (uint64_t s = 1; s <= full; ++s) {
    if ((s & (s - 1)) == 0) continue;  // singleton: already seeded
    SubsetPlan best;
    best.set = s;
    bool connected = false;
    const uint64_t low = LowestBit(s);
    for (uint64_t s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
      const uint64_t s2 = s ^ s1;
      const auto it1 = result.table.find(s1);
      const auto it2 = result.table.find(s2);
      if (it1 == result.table.end() || it2 == result.table.end()) continue;
      if (!HasCrossEdge(graph, s1, s2)) continue;
      connected = true;
      const SubsetPlan& p1 = it1->second;
      const SubsetPlan& p2 = it2->second;

      // Independent join: count each unordered split once (the half holding
      // the lowest bit is the canonical left).
      if ((s1 & low) != 0 && p1.feasible() && p2.feasible()) {
        ++stats.plans_considered;
        const double cost = IndependentCost(p1.cost, p2.cost);
        if (cost < best.cost) {
          best.cost = cost;
          best.left = s1;
          best.right = s2;
          best.method = EdgeMethod::kIndependent;
          best.bind_relation = -1;
          best.bind_edge = -1;
        }
      }

      // Bind join: s1 drives, s2 must be a single relation fetched bound.
      // The s1 loop enumerates every subset, so each (driver, bound) pair
      // appears exactly once without extra canonicalization.
      if ((s2 & (s2 - 1)) == 0 && p1.feasible()) {
        int r = 0;
        while (((s2 >> r) & 1u) == 0) ++r;
        ++stats.plans_considered;
        const BindChoice bind = BestBindCost(graph, s1, p1.rows, p1.cost, r);
        if (bind.feasible() && bind.cost < best.cost) {
          best.cost = bind.cost;
          best.left = s1;
          best.right = s2;
          best.method = EdgeMethod::kBind;
          best.bind_relation = r;
          best.bind_edge = bind.edge;
        }
      }
    }
    if (!connected) continue;
    best.rows = SubsetRows(graph, s);
    result.table.emplace(s, best);
    ++stats.subsets_expanded;
  }

  const auto it = result.table.find(full);
  if (it != result.table.end() && it->second.feasible()) {
    result.feasible = true;
    result.best = it->second;
  }
  result.stats = stats;
  return result;
}

JoinEnumerator::Result JoinEnumerator::EnumerateGreedy(const JoinGraph& graph,
                                                       JoinEnumStats stats) {
  Result result;
  const size_t n = graph.size();
  std::vector<SubsetPlan> components;
  for (size_t i = 0; i < n; ++i) {
    SubsetPlan leaf;
    leaf.set = uint64_t{1} << i;
    leaf.cost = graph.fetch_cost[i] >= 0.0 ? graph.fetch_cost[i] : kInf;
    leaf.rows = graph.rows[i];
    result.table.emplace(leaf.set, leaf);
    components.push_back(leaf);
    ++stats.subsets_expanded;
  }

  while (components.size() > 1) {
    SubsetPlan best;
    int best_i = -1, best_j = -1;
    for (size_t i = 0; i < components.size(); ++i) {
      for (size_t j = 0; j < components.size(); ++j) {
        if (i == j) continue;
        const SubsetPlan& ci = components[i];
        const SubsetPlan& cj = components[j];
        if (!HasCrossEdge(graph, ci.set, cj.set)) continue;

        // Independent merge (unordered: count i < j only).
        if (i < j && ci.feasible() && cj.feasible()) {
          ++stats.plans_considered;
          const double cost = IndependentCost(ci.cost, cj.cost);
          if (cost < best.cost) {
            best = SubsetPlan();
            best.set = ci.set | cj.set;
            best.cost = cost;
            best.left = ci.set;
            best.right = cj.set;
            best.method = EdgeMethod::kIndependent;
            best_i = static_cast<int>(i);
            best_j = static_cast<int>(j);
          }
        }

        // Bind merge: cj must still be a single relation.
        if ((cj.set & (cj.set - 1)) == 0 && ci.feasible()) {
          int r = 0;
          while (((cj.set >> r) & 1u) == 0) ++r;
          ++stats.plans_considered;
          const BindChoice bind =
              BestBindCost(graph, ci.set, ci.rows, ci.cost, r);
          if (bind.feasible() && bind.cost < best.cost) {
            best = SubsetPlan();
            best.set = ci.set | cj.set;
            best.cost = bind.cost;
            best.left = ci.set;
            best.right = cj.set;
            best.method = EdgeMethod::kBind;
            best.bind_relation = r;
            best.bind_edge = bind.edge;
            best_i = static_cast<int>(i);
            best_j = static_cast<int>(j);
          }
        }
      }
    }
    if (best_i < 0) {
      // No feasible merge anywhere: some component is unreachable.
      result.stats = stats;
      return result;
    }
    best.rows = SubsetRows(graph, best.set);
    result.table[best.set] = best;
    ++stats.subsets_expanded;
    // Replace the two merged components by the merge (erase higher first).
    const size_t hi = static_cast<size_t>(std::max(best_i, best_j));
    const size_t lo = static_cast<size_t>(std::min(best_i, best_j));
    components.erase(components.begin() + hi);
    components[lo] = best;
  }

  if (components[0].feasible()) {
    result.feasible = true;
    result.best = components[0];
  }
  result.stats = stats;
  return result;
}

JoinEnumerator::Result JoinEnumerator::EnumerateLeftDeep(const JoinGraph& graph,
                                                         JoinEnumStats stats) {
  Result result;
  const size_t n = graph.size();
  SubsetPlan cur;
  cur.set = 1;
  cur.cost = graph.fetch_cost[0] >= 0.0 ? graph.fetch_cost[0] : kInf;
  cur.rows = graph.rows[0];
  result.table.emplace(cur.set, cur);
  ++stats.subsets_expanded;

  uint64_t remaining = (n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1) & ~1ull;
  while (remaining != 0) {
    // Next relation in FROM order that the prefix connects to.
    int r = -1;
    for (size_t i = 1; i < n; ++i) {
      if (((remaining >> i) & 1u) == 0) continue;
      if (HasCrossEdge(graph, cur.set, uint64_t{1} << i)) {
        r = static_cast<int>(i);
        break;
      }
    }
    if (r < 0) {
      result.stats = stats;  // disconnected graph
      return result;
    }
    const uint64_t r_bit = uint64_t{1} << r;
    SubsetPlan leaf;
    leaf.set = r_bit;
    leaf.cost = graph.fetch_cost[r] >= 0.0 ? graph.fetch_cost[r] : kInf;
    leaf.rows = graph.rows[r];
    result.table.emplace(r_bit, leaf);
    ++stats.subsets_expanded;

    SubsetPlan next;
    next.set = cur.set | r_bit;
    next.left = cur.set;
    next.right = r_bit;
    if (cur.feasible() && leaf.feasible()) {
      ++stats.plans_considered;
      next.cost = IndependentCost(cur.cost, leaf.cost);
      next.method = EdgeMethod::kIndependent;
    }
    ++stats.plans_considered;
    const BindChoice bind = BestBindCost(graph, cur.set, cur.rows, cur.cost, r);
    if (bind.feasible() && bind.cost < next.cost) {
      next.cost = bind.cost;
      next.method = EdgeMethod::kBind;
      next.bind_relation = r;
      next.bind_edge = bind.edge;
    }
    if (!next.feasible()) {
      result.stats = stats;
      return result;
    }
    next.rows = SubsetRows(graph, next.set);
    result.table[next.set] = next;
    ++stats.subsets_expanded;
    cur = next;
    remaining &= ~r_bit;
  }

  result.feasible = true;
  result.best = cur;
  result.stats = stats;
  return result;
}

}  // namespace gencompact
