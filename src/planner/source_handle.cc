#include "planner/source_handle.h"

namespace gencompact {

SourceHandle::SourceHandle(SourceDescription description, const Table* table,
                           bool apply_commutativity_closure, double mediator_k3)
    : SourceHandle(std::move(description), table, nullptr,
                   apply_commutativity_closure, mediator_k3) {}

SourceHandle::SourceHandle(SourceDescription description, const Table* table,
                           std::unique_ptr<CardinalityEstimator> estimator,
                           bool apply_commutativity_closure, double mediator_k3)
    : description_(apply_commutativity_closure
                       ? CommutativityClosure(description)
                       : std::move(description)),
      table_(table),
      stats_(table != nullptr ? TableStats::Compute(*table) : TableStats()),
      estimator_(std::move(estimator)) {
  if (estimator_ == nullptr) {
    estimator_ = std::make_unique<StatsCardinalityEstimator>(
        &description_.schema(), &stats_);
  }
  checker_ = std::make_unique<Checker>(&description_);
  cost_model_ = std::make_unique<CostModel>(
      description_.k1(), description_.k2(), estimator_.get(), mediator_k3);
  // The result bound shapes the k1 term (one per page, truncation-risk
  // inflation); bound 0 leaves the model exactly Equation 1.
  cost_model_->set_result_bound(description_.result_bound());
}

}  // namespace gencompact
