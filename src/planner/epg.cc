#include "planner/epg.h"

#include "planner/child_subsets.h"

namespace gencompact {

PlanPtr Epg::Generate(const ConditionPtr& node, const AttributeSet& attrs) {
  ++num_calls_;
  const SubQueryKey key(*node, attrs);
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;
  PlanPtr plan = GenerateUncached(node, attrs);
  memo_.emplace(key, plan);
  return plan;
}

PlanPtr Epg::GenerateUncached(const ConditionPtr& node,
                              const AttributeSet& attrs) {
  Checker* checker = source_->checker();
  std::vector<PlanPtr> plans;

  // Line 2-3: the pure plan.
  if (checker->Supports(*node, attrs)) {
    plans.push_back(PlanNode::SourceQuery(node, attrs));
  }

  const std::vector<ConditionPtr>& children = node->children();
  const size_t k = children.size();

  if (node->kind() == ConditionNode::Kind::kAnd) {
    // Lines 5-8: for each nonempty subset X of children, evaluate X via
    // recursive plans (intersected) and the remaining children Local at the
    // mediator. X = all children is line 5 (no mediator selection).
    std::vector<uint32_t> subset_masks;
    if (k <= options_.max_and_children && k < 31) {
      const uint32_t full = (uint32_t{1} << k) - 1;
      for (uint32_t mask = 1; mask <= full; ++mask) subset_masks.push_back(mask);
    } else {
      // 2^k guard: keep only the full set and the singleton decompositions.
      incomplete_ = true;
      if (k < 31) {
        const uint32_t full = (uint32_t{1} << k) - 1;
        subset_masks.push_back(full);
        for (size_t i = 0; i < k; ++i) subset_masks.push_back(uint32_t{1} << i);
      }
    }
    const uint32_t full = k < 31 ? (uint32_t{1} << k) - 1 : 0;
    for (uint32_t mask : subset_masks) {
      const uint32_t local_mask = full & ~mask;
      AttributeSet requested = attrs;
      ConditionPtr local_cond;
      if (local_mask != 0) {
        local_cond = ChildSubsetCondition(*node, local_mask);
        const Result<AttributeSet> local_attrs =
            local_cond->Attributes(source_->schema());
        if (!local_attrs.ok()) continue;  // unknown attribute: no plan here
        requested = attrs.Union(local_attrs.value());
      }
      std::vector<PlanPtr> parts;
      parts.reserve(static_cast<size_t>(__builtin_popcount(mask)));
      bool feasible = true;
      for (size_t i = 0; i < k; ++i) {
        if ((mask >> i & 1) == 0) continue;
        PlanPtr part = Generate(children[i], requested);
        if (part == nullptr) {
          feasible = false;
          break;
        }
        parts.push_back(std::move(part));
      }
      if (!feasible) continue;
      PlanPtr combined = PlanNode::IntersectOf(std::move(parts));
      if (local_mask != 0) {
        combined = PlanNode::MediatorSp(local_cond, attrs, std::move(combined));
      }
      plans.push_back(std::move(combined));
    }
  } else if (node->kind() == ConditionNode::Kind::kOr) {
    // Line 10: union of plans for all children. (There is no opportunity to
    // evaluate parts of a disjunction on the results of source queries.)
    std::vector<PlanPtr> parts;
    parts.reserve(k);
    bool feasible = true;
    for (const ConditionPtr& child : children) {
      PlanPtr part = Generate(child, attrs);
      if (part == nullptr) {
        feasible = false;
        break;
      }
      parts.push_back(std::move(part));
    }
    if (feasible) plans.push_back(PlanNode::UnionOf(std::move(parts)));
  }

  // Lines 11-12 (generalized to every node kind, see EpgOptions): download
  // the relevant portion of the source and evaluate Cond(n) at the mediator.
  const bool try_download =
      options_.download_at_every_node || node->kind() == ConditionNode::Kind::kOr;
  if (try_download && !node->is_true()) {
    const Result<AttributeSet> cond_attrs = node->Attributes(source_->schema());
    if (cond_attrs.ok()) {
      const AttributeSet needed = attrs.Union(cond_attrs.value());
      const ConditionPtr true_cond = ConditionNode::True();
      if (checker->Supports(*true_cond, needed)) {
        plans.push_back(PlanNode::MediatorSp(
            node, attrs, PlanNode::SourceQuery(true_cond, needed)));
      }
    }
  }

  if (plans.empty()) return nullptr;  // ε
  return PlanNode::Choice(std::move(plans));
}

}  // namespace gencompact
