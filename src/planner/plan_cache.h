#ifndef GENCOMPACT_PLANNER_PLAN_CACHE_H_
#define GENCOMPACT_PLANNER_PLAN_CACHE_H_

#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "plan/plan.h"
#include "planner/planner.h"

namespace gencompact {

/// A sharded, thread-safe LRU cache of generated plans. Internet mediators
/// see the same form queries over and over (same condition shape, same
/// projection); plans are immutable and shared, so caching them is free of
/// aliasing hazards. Entries are keyed by (source, strategy, condition
/// structural key, projection), which is exactly the planner input.
///
/// Keys are distributed over N independently locked LRU shards by hash, so
/// concurrent Mediator::Query calls neither race nor serialize on a single
/// mutex; each shard maintains its own recency list and its share of the
/// capacity. With the default single shard the cache behaves exactly like a
/// global LRU (the per-shard capacity is the whole capacity), which is what
/// the eviction-order unit tests rely on.
///
/// Descriptions and statistics are assumed stable for the lifetime of the
/// cache; call Clear() after re-registering a source or refreshing stats.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256, size_t num_shards = 1);

  static std::string MakeKey(const std::string& source_name, Strategy strategy,
                             const ConditionNode& condition,
                             const AttributeSet& attrs) {
    return source_name + "\x1f" + StrategyName(strategy) + "\x1f" +
           std::to_string(attrs.bits()) + "\x1f" + condition.StructuralKey();
  }

  /// Returns the cached plan and refreshes its recency, or nullopt. Pass
  /// `count_stats = false` for internal double-checked lookups that should
  /// not distort the hit rate.
  std::optional<PlanPtr> Lookup(const std::string& key,
                                bool count_stats = true);

  /// Inserts a new entry, or refreshes the plan and recency of an existing
  /// key, evicting the shard's least recently used entry beyond its
  /// capacity. A refresh of an existing key counts as `refreshes`, never as
  /// a hit or a miss (only Lookup moves those), so hit_rate() reflects
  /// lookups alone no matter how often plans are re-inserted.
  void Insert(const std::string& key, PlanPtr plan);

  void Clear();

  size_t size() const;
  size_t hits() const;
  size_t misses() const;
  size_t refreshes() const;
  /// hits / (hits + misses); 0.0 before any lookup.
  double hit_rate() const;
  size_t num_shards() const { return shards_.size(); }
  size_t capacity() const { return shard_capacity_ * shards_.size(); }

 private:
  struct Entry {
    std::string key;
    PlanPtr plan;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::string, std::list<Entry>::iterator> entries;
    size_t hits = 0;
    size_t misses = 0;
    size_t refreshes = 0;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_PLAN_CACHE_H_
