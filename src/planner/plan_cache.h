#ifndef GENCOMPACT_PLANNER_PLAN_CACHE_H_
#define GENCOMPACT_PLANNER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "plan/plan.h"
#include "plan/sub_query_key.h"
#include "planner/planner.h"

namespace gencompact {

/// POD cache key: (source id, strategy, projection bits, interned condition
/// id). Trivially copyable, hashed without touching memory beyond its four
/// fields — building and probing it allocates nothing, so cache hits are
/// allocation-free end to end (asserted in plan_cache_test).
struct PlanCacheKey {
  ConditionId condition_id = 0;
  uint64_t attrs_bits = 0;
  uint32_t source_id = 0;
  Strategy strategy = Strategy::kGenCompact;

  bool operator==(const PlanCacheKey& other) const {
    return condition_id == other.condition_id &&
           attrs_bits == other.attrs_bits && source_id == other.source_id &&
           strategy == other.strategy;
  }
};

struct PlanCacheKeyHash {
  size_t operator()(const PlanCacheKey& key) const {
    uint64_t x = key.condition_id * 0x9e3779b97f4a7c15ull ^ key.attrs_bits;
    x ^= (uint64_t{key.source_id} << 8) ^ static_cast<uint64_t>(key.strategy);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// A sharded, thread-safe LRU cache of generated plans. Internet mediators
/// see the same form queries over and over (same condition shape, same
/// projection); plans are immutable and shared, so caching them is free of
/// aliasing hazards. Entries are keyed by (source, strategy, interned
/// condition id, projection), which is exactly the planner input: hash
/// consing guarantees a repeated query presents the same condition id.
///
/// Keys are distributed over N independently locked LRU shards by hash, so
/// concurrent Mediator::Query calls neither race nor serialize on a single
/// mutex; each shard maintains its own recency list and its share of the
/// capacity. With the default single shard the cache behaves exactly like a
/// global LRU (the per-shard capacity is the whole capacity), which is what
/// the eviction-order unit tests rely on.
///
/// Descriptions and statistics are assumed stable for the lifetime of the
/// cache; call Clear() after re-registering a source or refreshing stats.
/// Condition ids are never reused, so an entry whose condition died can only
/// go stale (and age out of the LRU), never alias a new condition.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256, size_t num_shards = 1);

  static PlanCacheKey MakeKey(uint32_t source_id, Strategy strategy,
                              const ConditionNode& condition,
                              const AttributeSet& attrs) {
    PlanCacheKey key;
    key.condition_id = condition.id();
    key.attrs_bits = attrs.bits();
    key.source_id = source_id;
    key.strategy = strategy;
    return key;
  }

  /// Returns the cached plan and refreshes its recency, or nullopt. Pass
  /// `count_stats = false` for internal double-checked lookups that should
  /// not distort the hit rate.
  std::optional<PlanPtr> Lookup(const PlanCacheKey& key,
                                bool count_stats = true);

  /// Inserts a new entry, or refreshes the plan and recency of an existing
  /// key, evicting the shard's least recently used entry beyond its
  /// capacity. A refresh of an existing key counts as `refreshes`, never as
  /// a hit or a miss (only Lookup moves those), so hit_rate() reflects
  /// lookups alone no matter how often plans are re-inserted.
  ///
  /// `pinned` keeps the keyed condition alive for the lifetime of the
  /// entry. This is what makes id-based keys hit across queries: as long as
  /// the entry lives, a re-parse of the same query text hash-conses to this
  /// exact node and therefore rebuilds this exact key. Without the pin the
  /// condition could die with the query, and the next parse would intern a
  /// fresh node under a fresh id — a permanent cache miss. (Pass nullptr
  /// only when the caller keeps the condition alive itself.)
  void Insert(const PlanCacheKey& key, PlanPtr plan,
              ConditionPtr pinned = nullptr);

  void Clear();

  size_t size() const;
  size_t hits() const;
  size_t misses() const;
  size_t refreshes() const;
  /// Lock acquisitions (Lookup/Insert) that found a shard's mutex already
  /// held and had to block — the direct measure of whether the shard count
  /// matches the concurrency level. Summed over shards.
  size_t contended() const;
  /// hits / (hits + misses); 0.0 before any lookup.
  double hit_rate() const;
  size_t num_shards() const { return shards_.size(); }
  size_t capacity() const { return shard_capacity_ * shards_.size(); }

  /// Per-shard counter snapshot (index order), for the /varz-style stats
  /// snapshot: a single hot shard shows up here, not in the totals.
  struct ShardStats {
    size_t size = 0;
    size_t hits = 0;
    size_t misses = 0;
    size_t refreshes = 0;
    size_t contended = 0;
  };
  std::vector<ShardStats> PerShardStats() const;

 private:
  struct Entry {
    PlanCacheKey key;
    PlanPtr plan;
    ConditionPtr pinned;  ///< keeps key.condition_id re-internable (see Insert)
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<PlanCacheKey, std::list<Entry>::iterator,
                       PlanCacheKeyHash>
        entries;
    size_t hits = 0;
    size_t misses = 0;
    size_t refreshes = 0;
    size_t contended = 0;
  };

  Shard& ShardFor(const PlanCacheKey& key) {
    return *shards_[PlanCacheKeyHash{}(key) % shards_.size()];
  }

  /// Locks the shard, counting the acquisition as contended when the mutex
  /// was already held (try-lock first; the slow path blocks normally).
  static std::unique_lock<std::mutex> LockShard(Shard& shard) {
    std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
    if (!lock.owns_lock()) {
      lock.lock();
      ++shard.contended;  // counted under the lock, race-free
    }
    return lock;
  }

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_PLAN_CACHE_H_
