#ifndef GENCOMPACT_PLANNER_PLAN_CACHE_H_
#define GENCOMPACT_PLANNER_PLAN_CACHE_H_

#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "plan/plan.h"
#include "planner/planner.h"

namespace gencompact {

/// An LRU cache of generated plans. Internet mediators see the same form
/// queries over and over (same condition shape, same projection); plans are
/// immutable and shared, so caching them is free of aliasing hazards.
/// Entries are keyed by (source, strategy, condition structural key,
/// projection), which is exactly the planner input.
///
/// Descriptions and statistics are assumed stable for the lifetime of the
/// cache; call Clear() after re-registering a source or refreshing stats.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 256) : capacity_(capacity) {}

  static std::string MakeKey(const std::string& source_name, Strategy strategy,
                             const ConditionNode& condition,
                             const AttributeSet& attrs) {
    return source_name + "\x1f" + StrategyName(strategy) + "\x1f" +
           std::to_string(attrs.bits()) + "\x1f" + condition.StructuralKey();
  }

  /// Returns the cached plan and refreshes its recency, or nullopt.
  std::optional<PlanPtr> Lookup(const std::string& key);

  /// Inserts (or refreshes) an entry, evicting the least recently used
  /// entry beyond capacity.
  void Insert(const std::string& key, PlanPtr plan);

  void Clear();

  size_t size() const { return entries_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;
    PlanPtr plan;
  };

  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLANNER_PLAN_CACHE_H_
