#include "storage/table.h"

#include "storage/column_batch.h"

namespace gencompact {

const ColumnStore& Table::columns() const {
  std::call_once(columns_once_, [this] {
    auto store = std::make_unique<ColumnStore>(schema_);
    for (const Row& row : rows_) store->AppendRow(row);
    columns_ = std::move(store);
  });
  return *columns_;
}

Status Table::Append(Row row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row width " + std::to_string(row.size()) + " != schema width " +
        std::to_string(schema_.num_attributes()) + " for table " + name_);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Value& v = row.value(i);
    if (v.is_null()) continue;
    const ValueType declared = schema_.attribute(static_cast<int>(i)).type;
    const ValueType actual = v.type();
    const bool numeric_ok =
        (declared == ValueType::kInt || declared == ValueType::kDouble) &&
        v.is_numeric();
    if (actual != declared && !numeric_ok) {
      return Status::InvalidArgument(
          "value " + v.ToString() + " has type " + ValueTypeName(actual) +
          ", expected " + ValueTypeName(declared) + " for attribute " +
          schema_.attribute(static_cast<int>(i)).name);
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

}  // namespace gencompact
