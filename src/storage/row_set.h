#ifndef GENCOMPACT_STORAGE_ROW_SET_H_
#define GENCOMPACT_STORAGE_ROW_SET_H_

#include <unordered_set>
#include <vector>

#include "storage/row.h"

namespace gencompact {

/// A duplicate-free bag of rows sharing one layout. The mediator operates
/// under set semantics (Section 3, footnote 2: the mediator performs
/// duplicate elimination), so query results are RowSets.
class RowSet {
 public:
  RowSet() : layout_(AttributeSet(), 0) {}
  explicit RowSet(RowLayout layout) : layout_(std::move(layout)) {}

  const RowLayout& layout() const { return layout_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }

  /// Inserts a row (deduplicating). Returns true if newly inserted.
  bool Insert(Row row);

  bool Contains(const Row& row) const { return rows_.count(row) > 0; }

  const std::unordered_set<Row, RowHash>& rows() const { return rows_; }

  /// Rows in a deterministic order — Value-wise lexicographic comparison
  /// slot by slot (Value::Compare), shorter rows first on a tie — for
  /// tests/printing.
  std::vector<Row> SortedRows() const;

  /// Moves every row of `other` into this set (in-place set union — rows
  /// are moved, not copied, and cached hashes are reused); attribute sets
  /// must agree. `other` is left valid but unspecified.
  void MergeFrom(RowSet&& other);

  /// Drops every row not present in `other` (in-place set intersection);
  /// attribute sets must agree.
  void IntersectWith(const RowSet& other);

  /// Set union; layouts must agree.
  static RowSet UnionOf(const RowSet& a, const RowSet& b);

  /// Set intersection; layouts must agree.
  static RowSet IntersectOf(const RowSet& a, const RowSet& b);

  /// Projects all rows to `attrs` (subset of layout attrs), deduplicating.
  RowSet ProjectTo(const AttributeSet& attrs, size_t schema_width) const;

 private:
  RowLayout layout_;
  std::unordered_set<Row, RowHash> rows_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_STORAGE_ROW_SET_H_
