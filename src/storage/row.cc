#include "storage/row.h"

#include <cassert>

namespace gencompact {

size_t Row::ExtendHash(size_t h, const Value* values, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    h ^= values[i].Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Row::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "]";
  return out;
}

RowLayout::RowLayout(AttributeSet attrs, size_t schema_width)
    : attrs_(attrs), slot_of_(schema_width, -1) {
  int slot = 0;
  for (int index : attrs.Indices()) {
    assert(static_cast<size_t>(index) < schema_width);
    slot_of_[index] = slot++;
  }
}

Row RowLayout::Project(const Row& row, const RowLayout& narrower) const {
  assert(narrower.attrs().IsSubsetOf(attrs_));
  std::vector<Value> values;
  values.reserve(narrower.width());
  for (int index : narrower.attrs().Indices()) {
    const int slot = SlotOf(index);
    assert(slot >= 0);
    values.push_back(row.value(static_cast<size_t>(slot)));
  }
  return Row(std::move(values));
}

}  // namespace gencompact
