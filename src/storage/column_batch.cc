#include "storage/column_batch.h"

#include <bit>
#include <cassert>

namespace gencompact {

namespace {

// Mirrors Row::Hash()'s fold exactly (seed and combine), so column-computed
// hashes interoperate with Row's cached hashes.
constexpr size_t kRowHashSeed = 0x51ed270b7a2cf321ull;

inline size_t CombineHash(size_t h, size_t value_hash) {
  return h ^ (value_hash + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
}

}  // namespace

Value Column::ValueAt(size_t row) const {
  switch (TagAt(row)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kBool:
      return Value::Bool(bools[row] != 0);
    case ValueType::kInt:
      return Value::Int(nums[row]);
    case ValueType::kDouble:
      return Value::Double(std::bit_cast<double>(nums[row]));
    case ValueType::kString:
      return Value::String(strs[row]);
  }
  return Value::Null();
}

double Column::NumericAt(size_t row) const {
  return TagAt(row) == ValueType::kInt
             ? static_cast<double>(nums[row])
             : std::bit_cast<double>(nums[row]);
}

ColumnStore::ColumnStore(std::vector<ValueType> types) {
  columns_.resize(types.size());
  for (size_t i = 0; i < types.size(); ++i) columns_[i].declared = types[i];
}

ColumnStore::ColumnStore(const Schema& schema) {
  columns_.resize(schema.num_attributes());
  for (size_t i = 0; i < columns_.size(); ++i) {
    columns_[i].declared = schema.attribute(static_cast<int>(i)).type;
  }
}

void ColumnStore::AppendRow(const Row& row) {
  assert(row.size() == columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    Column& col = columns_[i];
    const Value& v = row.value(i);
    col.tag.push_back(static_cast<uint8_t>(v.type()));
    col.hash.push_back(v.Hash());
    switch (col.declared) {
      case ValueType::kInt:
      case ValueType::kDouble:
        col.nums.push_back(v.is_null() ? 0
                           : v.type() == ValueType::kInt
                               ? v.int_value()
                               : std::bit_cast<int64_t>(v.double_value()));
        break;
      case ValueType::kBool:
        col.bools.push_back(v.is_null() ? 0 : (v.bool_value() ? 1 : 0));
        break;
      default:
        col.strs.push_back(v.is_null() ? std::string() : v.string_value());
        break;
    }
  }
  ++num_rows_;
}

Row ColumnStore::MaterializeRow(uint32_t row,
                                const std::vector<int>& cols) const {
  std::vector<Value> values;
  values.reserve(cols.size());
  for (int col : cols) {
    values.push_back(columns_[static_cast<size_t>(col)].ValueAt(row));
  }
  // The cached cell hashes fold to exactly Row::ComputeHash(values): hand
  // the Row its hash instead of re-hashing the payloads it just copied.
  return Row(std::move(values), HashRow(row, cols));
}

size_t ColumnStore::HashRow(uint32_t row, const std::vector<int>& cols) const {
  size_t h = kRowHashSeed;
  for (int col : cols) {
    h = CombineHash(h, columns_[static_cast<size_t>(col)].hash[row]);
  }
  return h;
}

void ColumnStore::HashRows(const std::vector<uint32_t>& rows,
                           const std::vector<int>& cols,
                           std::vector<size_t>* hashes) const {
  hashes->assign(rows.size(), kRowHashSeed);
  size_t* h = hashes->data();
  for (int col : cols) {
    const size_t* ch = columns_[static_cast<size_t>(col)].hash.data();
    for (size_t i = 0; i < rows.size(); ++i) {
      h[i] = CombineHash(h[i], ch[rows[i]]);
    }
  }
}

bool ColumnStore::RowsEqual(uint32_t a, uint32_t b,
                            const std::vector<int>& cols) const {
  for (int ci : cols) {
    const Column& c = columns_[static_cast<size_t>(ci)];
    const ValueType ta = c.TagAt(a);
    const ValueType tb = c.TagAt(b);
    if (ta == ValueType::kNull || tb == ValueType::kNull) {
      if (ta != tb) return false;  // null vs non-null: unequal ranks
      continue;                    // null == null under Value::Compare
    }
    switch (c.declared) {
      case ValueType::kInt:
      case ValueType::kDouble: {
        // Value::Compare semantics: exact when both int, else via double.
        if (ta == ValueType::kInt && tb == ValueType::kInt) {
          if (c.nums[a] != c.nums[b]) return false;
        } else if (c.NumericAt(a) != c.NumericAt(b)) {
          return false;
        }
        break;
      }
      case ValueType::kBool:
        if (c.bools[a] != c.bools[b]) return false;
        break;
      default:
        if (c.strs[a] != c.strs[b]) return false;
        break;
    }
  }
  return true;
}

ColumnStore TransposeRowSet(const RowSet& rows, const Schema& schema) {
  std::vector<ValueType> types;
  types.reserve(rows.layout().width());
  for (int index : rows.layout().attrs().Indices()) {
    types.push_back(schema.attribute(index).type);
  }
  ColumnStore store(std::move(types));
  for (const Row& row : rows.rows()) store.AppendRow(row);
  return store;
}

bool BatchDeduper::AddIfNew(size_t hash, uint32_t row) {
  const auto [it, inserted] = first_.try_emplace(hash, row);
  if (inserted) return true;
  if (store_->RowsEqual(it->second, row, cols_)) return false;
  // Same 64-bit hash, different tuple: check (and extend) the overflow list.
  for (const auto& [h, r] : overflow_) {
    if (h == hash && store_->RowsEqual(r, row, cols_)) return false;
  }
  overflow_.emplace_back(hash, row);
  return true;
}

}  // namespace gencompact
