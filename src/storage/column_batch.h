#ifndef GENCOMPACT_STORAGE_COLUMN_BATCH_H_
#define GENCOMPACT_STORAGE_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/value.h"
#include "schema/schema.h"
#include "storage/row.h"
#include "storage/row_set.h"

namespace gencompact {

/// One typed column of a ColumnStore. The declared type picks the payload
/// vector; a per-cell tag records the *actual* Value type, because storage
/// is deliberately looser than the declaration: nulls are allowed anywhere,
/// and a declared-numeric column may hold both kInt and kDouble cells
/// (Table::Append accepts either for numeric attributes). Keeping the exact
/// per-cell type is what makes the columnar path bit-identical to the row
/// path — an Int(2) must come back as Int(2), never as Double(2.0), even
/// though the two compare (and hash) equal.
struct Column {
  ValueType declared = ValueType::kString;

  /// Actual Value type per cell (kNull for NULL). Never shrinks.
  std::vector<uint8_t> tag;

  /// Value::Hash() per cell, cached at append time. The store is built once
  /// per table (or once per transposed intermediate), so scans fold these
  /// instead of re-hashing string payloads on every query — the columnar
  /// analogue of Row's constructor-cached hash.
  std::vector<size_t> hash;

  /// Payload, indexed in lockstep with `tag` (placeholder entries for
  /// nulls keep the indices aligned):
  ///   numeric declared: int64 value, or the bit pattern of the double
  ///   (disambiguated by the tag);
  std::vector<int64_t> nums;
  ///   bool declared: 0/1;
  std::vector<uint8_t> bools;
  ///   string declared: the bytes.
  std::vector<std::string> strs;

  ValueType TagAt(size_t row) const {
    return static_cast<ValueType>(tag[row]);
  }
  bool IsNull(size_t row) const { return TagAt(row) == ValueType::kNull; }

  /// Materializes the cell as a Value (exact round trip of what was
  /// appended).
  Value ValueAt(size_t row) const;

  /// Numeric view of a numeric cell (int widened, double reinterpreted).
  double NumericAt(size_t row) const;
};

/// Column-major mirror of a sequence of rows sharing one slot layout: the
/// storage the batched data plane scans. Append order is row order, so row
/// ids are stable and shared with the row-major original.
class ColumnStore {
 public:
  ColumnStore() = default;

  /// One column per slot, with the given declared types.
  explicit ColumnStore(std::vector<ValueType> types);

  /// Convenience: full-schema store (one column per schema attribute).
  explicit ColumnStore(const Schema& schema);

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Appends a row (width must match the column count). Cells must be null
  /// or type-compatible with the declared column type (numeric columns
  /// accept both kInt and kDouble, like Table::Append).
  void AppendRow(const Row& row);

  /// Materializes row `row` projected to `cols` (ascending slot ids is the
  /// caller's convention; any order is honored). The Row's cached hash is
  /// computed by its constructor.
  Row MaterializeRow(uint32_t row, const std::vector<int>& cols) const;

  /// Hash of row `row` projected to `cols` — exactly Row::Hash() of
  /// MaterializeRow(row, cols), computed straight from the columns without
  /// building the Row.
  size_t HashRow(uint32_t row, const std::vector<int>& cols) const;

  /// Column-wise batch hashing: hashes[i] = HashRow(rows[i], cols) for all
  /// i, walking each column once (cache-friendly) instead of each row once.
  void HashRows(const std::vector<uint32_t>& rows, const std::vector<int>& cols,
                std::vector<size_t>* hashes) const;

  /// Value-equality (Value::Compare == 0 per slot) of two stored rows over
  /// `cols` — the dedup verify behind hash matches.
  bool RowsEqual(uint32_t a, uint32_t b, const std::vector<int>& cols) const;

 private:
  std::vector<Column> columns_;
  size_t num_rows_ = 0;
};

/// Builds the column-major mirror of `rows` (layout types taken from
/// `schema` through `layout`), preserving iteration order — row id i is the
/// i-th row the iterable yielded.
ColumnStore TransposeRowSet(const RowSet& rows, const Schema& schema);

/// A batch of rows of a ColumnStore: the dense row-id range [begin, end)
/// plus the selection vector of rows still alive after predicate
/// evaluation (ascending row ids). The batch never copies data — kernels
/// read the store's columns directly and only the selection shrinks.
struct ColumnBatch {
  const ColumnStore* store = nullptr;
  uint32_t begin = 0;
  uint32_t end = 0;
  std::vector<uint32_t> selection;

  size_t width() const { return end - begin; }
};

/// Streaming duplicate eliminator over stored rows: feeds on
/// (hash, row id) pairs batch after batch and keeps the first row id of
/// every distinct projected tuple — the SP(C,A,R) duplicate elimination of
/// the batched data plane, running on row ids and column comparisons
/// instead of materialized Rows. Hash collisions are verified by
/// column-wise value equality, so the result is exact.
class BatchDeduper {
 public:
  BatchDeduper(const ColumnStore* store, std::vector<int> cols)
      : store_(store), cols_(std::move(cols)) {}

  /// True iff no previously added row equals `row` over the projection;
  /// records the row either way.
  bool AddIfNew(size_t hash, uint32_t row);

  size_t unique_count() const { return first_.size() + overflow_.size(); }

 private:
  const ColumnStore* store_;
  std::vector<int> cols_;
  /// hash -> first row id seen with that hash.
  std::unordered_map<size_t, uint32_t> first_;
  /// True 64-bit-hash collisions (distinct tuples, same hash): rare enough
  /// for a linear list probed only on a hash hit with unequal values.
  std::vector<std::pair<size_t, uint32_t>> overflow_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_STORAGE_COLUMN_BATCH_H_
