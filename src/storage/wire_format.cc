#include "storage/wire_format.h"

#include <bit>
#include <cstring>

namespace gencompact {

namespace {

constexpr uint32_t kMagic = 0x46574347u;  // "GCWF"
constexpr uint8_t kVersion = 1;

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutZigzag(std::string* out, int64_t v) {
  PutVarint(out, (static_cast<uint64_t>(v) << 1) ^
                     static_cast<uint64_t>(v >> 63));
}

class Reader {
 public:
  explicit Reader(std::string_view bytes) : data_(bytes) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  template <typename T>
  bool ReadFixed(T* v) {
    if (pos_ + sizeof(T) > data_.size()) return false;
    std::memcpy(v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadVarint(uint64_t* v) {
    uint64_t out = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= data_.size()) return false;
      const uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      out |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *v = out;
        return true;
      }
    }
    return false;
  }

  bool ReadZigzag(int64_t* v) {
    uint64_t raw;
    if (!ReadVarint(&raw)) return false;
    *v = static_cast<int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
    return true;
  }

  bool ReadBytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

std::string EncodeColumnar(const ColumnStore& store,
                           const std::vector<int>& cols,
                           const std::vector<uint32_t>& rows,
                           uint64_t attr_bits, uint32_t schema_width) {
  std::string out;
  PutFixed(&out, kMagic);
  PutU8(&out, kVersion);
  PutFixed(&out, attr_bits);
  PutFixed(&out, schema_width);
  PutFixed(&out, static_cast<uint32_t>(rows.size()));
  PutU8(&out, static_cast<uint8_t>(cols.size()));
  for (int ci : cols) {
    const Column& col = store.column(static_cast<size_t>(ci));
    PutU8(&out, static_cast<uint8_t>(col.declared));
    for (uint32_t row : rows) PutU8(&out, col.tag[row]);
    for (uint32_t row : rows) {
      switch (col.TagAt(row)) {
        case ValueType::kNull:
          break;
        case ValueType::kBool:
          PutU8(&out, col.bools[row]);
          break;
        case ValueType::kInt:
          PutZigzag(&out, col.nums[row]);
          break;
        case ValueType::kDouble:
          PutFixed(&out, col.nums[row]);  // already the IEEE bit pattern
          break;
        case ValueType::kString:
          PutVarint(&out, col.strs[row].size());
          out += col.strs[row];
          break;
      }
    }
  }
  return out;
}

std::string EncodeColumnar(const RowSet& rows, const Schema& schema) {
  const ColumnStore store = TransposeRowSet(rows, schema);
  std::vector<int> cols(store.num_columns());
  for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
  std::vector<uint32_t> ids(store.num_rows());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<uint32_t>(i);
  return EncodeColumnar(store, cols, ids, rows.layout().attrs().bits(),
                        static_cast<uint32_t>(schema.num_attributes()));
}

Result<RowSet> DecodeColumnar(std::string_view bytes) {
  Reader reader(bytes);
  uint32_t magic = 0;
  uint8_t version = 0;
  uint64_t attr_bits = 0;
  uint32_t schema_width = 0;
  uint32_t num_rows = 0;
  uint8_t num_cols = 0;
  if (!reader.ReadFixed(&magic) || magic != kMagic) {
    return Status::InvalidArgument("columnar wire buffer: bad magic");
  }
  if (!reader.ReadU8(&version) || version != kVersion) {
    return Status::InvalidArgument("columnar wire buffer: bad version");
  }
  if (!reader.ReadFixed(&attr_bits) || !reader.ReadFixed(&schema_width) ||
      !reader.ReadFixed(&num_rows) || !reader.ReadU8(&num_cols)) {
    return Status::InvalidArgument("columnar wire buffer: truncated header");
  }
  const AttributeSet attrs = AttributeSet::FromBits(attr_bits);
  if (attrs.size() != num_cols || schema_width > 64) {
    return Status::InvalidArgument("columnar wire buffer: header mismatch");
  }

  // Decode column-major into a row-major Value matrix, then insert rows.
  std::vector<std::vector<Value>> matrix(
      num_rows, std::vector<Value>(num_cols));
  for (size_t c = 0; c < num_cols; ++c) {
    uint8_t declared = 0;
    if (!reader.ReadU8(&declared)) {
      return Status::InvalidArgument("columnar wire buffer: truncated column");
    }
    std::vector<uint8_t> tags(num_rows);
    for (uint32_t r = 0; r < num_rows; ++r) {
      if (!reader.ReadU8(&tags[r])) {
        return Status::InvalidArgument("columnar wire buffer: truncated tags");
      }
    }
    for (uint32_t r = 0; r < num_rows; ++r) {
      switch (static_cast<ValueType>(tags[r])) {
        case ValueType::kNull:
          matrix[r][c] = Value::Null();
          break;
        case ValueType::kBool: {
          uint8_t v = 0;
          if (!reader.ReadU8(&v)) {
            return Status::InvalidArgument(
                "columnar wire buffer: truncated bool");
          }
          matrix[r][c] = Value::Bool(v != 0);
          break;
        }
        case ValueType::kInt: {
          int64_t v = 0;
          if (!reader.ReadZigzag(&v)) {
            return Status::InvalidArgument(
                "columnar wire buffer: truncated int");
          }
          matrix[r][c] = Value::Int(v);
          break;
        }
        case ValueType::kDouble: {
          int64_t bits = 0;
          if (!reader.ReadFixed(&bits)) {
            return Status::InvalidArgument(
                "columnar wire buffer: truncated double");
          }
          matrix[r][c] = Value::Double(std::bit_cast<double>(bits));
          break;
        }
        case ValueType::kString: {
          uint64_t len = 0;
          std::string s;
          if (!reader.ReadVarint(&len) || !reader.ReadBytes(len, &s)) {
            return Status::InvalidArgument(
                "columnar wire buffer: truncated string");
          }
          matrix[r][c] = Value::String(std::move(s));
          break;
        }
        default:
          return Status::InvalidArgument("columnar wire buffer: bad tag");
      }
    }
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("columnar wire buffer: trailing bytes");
  }

  RowSet out(RowLayout(attrs, schema_width));
  for (auto& values : matrix) out.Insert(Row(std::move(values)));
  return out;
}

}  // namespace gencompact
