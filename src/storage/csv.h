#ifndef GENCOMPACT_STORAGE_CSV_H_
#define GENCOMPACT_STORAGE_CSV_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "storage/table.h"

namespace gencompact {

/// Loads CSV text into a Table typed by `schema`. Conventions:
///  * first line may be a header; when `expect_header` it must name the
///    schema's attributes in order (validated), otherwise data starts at
///    line one;
///  * fields are comma-separated; a field may be double-quoted, with `""`
///    escaping a quote inside;
///  * values are coerced per the schema attribute type: int/double parsed
///    numerically, bool accepts true/false/1/0, empty unquoted fields are
///    NULL;
///  * InvalidArgument (with line number) on width or coercion errors.
Result<std::unique_ptr<Table>> LoadCsv(std::string_view text,
                                       const std::string& table_name,
                                       const Schema& schema,
                                       bool expect_header = true);

/// Reads `path` and delegates to LoadCsv. NotFound if unreadable.
Result<std::unique_ptr<Table>> LoadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const Schema& schema,
                                           bool expect_header = true);

/// Serializes a table to CSV (with header), the inverse of LoadCsv. NULLs
/// become empty fields; strings are quoted when they contain separators,
/// quotes, or newlines.
std::string WriteCsv(const Table& table);

}  // namespace gencompact

#endif  // GENCOMPACT_STORAGE_CSV_H_
