#include "storage/table_stats.h"

#include <algorithm>
#include <unordered_map>

namespace gencompact {

TableStats TableStats::Compute(const Table& table, size_t histogram_buckets) {
  TableStats stats;
  stats.num_rows_ = table.num_rows();
  const size_t width = table.schema().num_attributes();
  stats.attributes_.resize(width);

  for (size_t a = 0; a < width; ++a) {
    AttributeStats& as = stats.attributes_[a];
    std::unordered_map<Value, uint64_t, ValueHash> counts;
    std::vector<double> numeric_values;
    // Deterministic reservoir sampling (xorshift seeded per attribute).
    uint64_t sample_rng = 0x9e3779b97f4a7c15ull ^ (a * 0x2545f4914f6cdd1dull);
    const auto next_random = [&sample_rng]() {
      sample_rng ^= sample_rng << 13;
      sample_rng ^= sample_rng >> 7;
      sample_rng ^= sample_rng << 17;
      return sample_rng;
    };
    for (const Row& row : table.rows()) {
      const Value& v = row.value(a);
      if (v.is_null()) continue;
      ++as.num_non_null;
      ++counts[v];
      if (v.is_numeric()) numeric_values.push_back(v.AsDouble());
      if (as.sample_values.size() < AttributeStats::kMaxSampleValues) {
        as.sample_values.push_back(v);
      } else {
        const uint64_t slot = next_random() % as.num_non_null;
        if (slot < AttributeStats::kMaxSampleValues) {
          as.sample_values[slot] = v;
        }
      }
    }
    as.num_distinct = counts.size();

    if (!numeric_values.empty()) {
      std::sort(numeric_values.begin(), numeric_values.end());
      as.has_range = true;
      as.min_value = numeric_values.front();
      as.max_value = numeric_values.back();
      if (histogram_buckets > 1 && numeric_values.size() > histogram_buckets) {
        as.histogram_bounds.reserve(histogram_buckets);
        for (size_t b = 1; b <= histogram_buckets; ++b) {
          const size_t pos =
              std::min(numeric_values.size() - 1,
                       b * numeric_values.size() / histogram_buckets);
          as.histogram_bounds.push_back(
              numeric_values[pos == 0 ? 0 : pos - (b == histogram_buckets ? 0 : 1)]);
        }
        as.histogram_bounds.back() = numeric_values.back();
      }
    }

    // Track the most frequent values exactly.
    std::vector<std::pair<Value, uint64_t>> ranked(counts.begin(), counts.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& x, const auto& y) { return x.second > y.second; });
    if (ranked.size() > AttributeStats::kMaxCommonValues) {
      ranked.resize(AttributeStats::kMaxCommonValues);
    }
    as.common_values = std::move(ranked);
  }
  return stats;
}

std::optional<uint64_t> TableStats::CommonValueCount(int attr,
                                                     const Value& value) const {
  const AttributeStats& as = attributes_[static_cast<size_t>(attr)];
  for (const auto& [v, count] : as.common_values) {
    if (v == value) return count;
  }
  return std::nullopt;
}

}  // namespace gencompact
