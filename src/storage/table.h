#ifndef GENCOMPACT_STORAGE_TABLE_H_
#define GENCOMPACT_STORAGE_TABLE_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "schema/schema.h"
#include "storage/column_batch.h"
#include "storage/row.h"

namespace gencompact {

/// An in-memory relation: the data behind one simulated Internet source.
/// Rows are stored in full schema layout; duplicate full rows are allowed in
/// storage but query results are deduplicated downstream (set semantics).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a row; InvalidArgument if the width or any value type mismatches
  /// the schema (nulls are accepted for any type).
  Status Append(Row row);

  /// Convenience: append from values.
  Status AppendValues(std::vector<Value> values) {
    return Append(Row(std::move(values)));
  }

  /// Full-schema row layout.
  RowLayout FullLayout() const {
    return RowLayout(schema_.AllAttributes(), schema_.num_attributes());
  }

  /// Column-major mirror of the rows — the scan storage of the batched data
  /// plane. Built lazily on first use (thread-safe; concurrent scans share
  /// one build). Rows appended after the first columns() call are not
  /// reflected: sources freeze their tables at registration, before query
  /// traffic, like the rest of source configuration.
  const ColumnStore& columns() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;

  mutable std::once_flag columns_once_;
  mutable std::unique_ptr<ColumnStore> columns_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_STORAGE_TABLE_H_
