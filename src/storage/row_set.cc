#include "storage/row_set.h"

#include <algorithm>
#include <cassert>
#include <iterator>

namespace gencompact {

bool RowSet::Insert(Row row) {
  assert(row.size() == layout_.width());
  return rows_.insert(std::move(row)).second;
}

std::vector<Row> RowSet::SortedRows() const {
  std::vector<Row> out(rows_.begin(), rows_.end());
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    const size_t n = std::min(a.size(), b.size());
    for (size_t i = 0; i < n; ++i) {
      const int c = a.value(i).Compare(b.value(i));
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return out;
}

void RowSet::MergeFrom(RowSet&& other) {
  assert(layout_.attrs() == other.layout_.attrs());
  if (rows_.empty()) {
    rows_ = std::move(other.rows_);
    return;
  }
  rows_.merge(other.rows_);  // duplicates stay behind in `other`
}

void RowSet::IntersectWith(const RowSet& other) {
  assert(layout_.attrs() == other.layout_.attrs());
  for (auto it = rows_.begin(); it != rows_.end();) {
    it = other.Contains(*it) ? std::next(it) : rows_.erase(it);
  }
}

RowSet RowSet::UnionOf(const RowSet& a, const RowSet& b) {
  assert(a.layout().attrs() == b.layout().attrs());
  RowSet out(a.layout());
  for (const Row& row : a.rows()) out.Insert(row);
  for (const Row& row : b.rows()) out.Insert(row);
  return out;
}

RowSet RowSet::IntersectOf(const RowSet& a, const RowSet& b) {
  assert(a.layout().attrs() == b.layout().attrs());
  RowSet out(a.layout());
  const RowSet& small = a.size() <= b.size() ? a : b;
  const RowSet& large = a.size() <= b.size() ? b : a;
  for (const Row& row : small.rows()) {
    if (large.Contains(row)) out.Insert(row);
  }
  return out;
}

RowSet RowSet::ProjectTo(const AttributeSet& attrs, size_t schema_width) const {
  RowLayout narrower(attrs, schema_width);
  RowSet out(narrower);
  for (const Row& row : rows_) {
    out.Insert(layout_.Project(row, narrower));
  }
  return out;
}

}  // namespace gencompact
