#ifndef GENCOMPACT_STORAGE_WIRE_FORMAT_H_
#define GENCOMPACT_STORAGE_WIRE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "storage/column_batch.h"
#include "storage/row_set.h"

namespace gencompact {

/// Compact columnar wire encoding of one wrapper transfer — the batched
/// data plane's replacement for shipping row vectors of heap Values.
///
/// Layout (little-endian):
///   u32  magic "GCWF"
///   u8   version (1)
///   u64  projected attribute bits (RowLayout attrs)
///   u32  schema width (RowLayout denominator)
///   u32  row count
///   u8   column count
///   per column, column-major:
///     u8  declared type
///     row-count bytes of per-cell Value-type tags (kNull for NULL)
///     payload for every non-null cell in row order:
///       kBool:   1 byte
///       kInt:    zigzag varint
///       kDouble: 8 raw bytes (IEEE bit pattern)
///       kString: varint length + bytes
///
/// Strings, nulls, and mixed int/double numeric columns all round-trip
/// exactly; a decoded transfer is value-identical to the encoded rows.

/// Encodes the rows `rows` (ids into `store`) projected to `cols`.
/// `attr_bits`/`schema_width` describe the receiver-side RowLayout.
std::string EncodeColumnar(const ColumnStore& store,
                           const std::vector<int>& cols,
                           const std::vector<uint32_t>& rows,
                           uint64_t attr_bits, uint32_t schema_width);

/// Convenience overload: encodes a whole RowSet (iteration order).
std::string EncodeColumnar(const RowSet& rows, const Schema& schema);

/// Decodes a transfer into a RowSet (layout rebuilt from the header).
/// InvalidArgument on malformed or truncated buffers.
Result<RowSet> DecodeColumnar(std::string_view bytes);

}  // namespace gencompact

#endif  // GENCOMPACT_STORAGE_WIRE_FORMAT_H_
