#ifndef GENCOMPACT_STORAGE_TABLE_STATS_H_
#define GENCOMPACT_STORAGE_TABLE_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/value.h"
#include "storage/table.h"

namespace gencompact {

/// Per-attribute statistics used by the cardinality estimator.
struct AttributeStats {
  uint64_t num_non_null = 0;
  uint64_t num_distinct = 0;

  /// Numeric range (valid when has_range).
  bool has_range = false;
  double min_value = 0.0;
  double max_value = 0.0;

  /// Equi-depth histogram bucket upper bounds (numeric attributes only);
  /// bucket i covers (bounds[i-1], bounds[i]] with equal row counts.
  std::vector<double> histogram_bounds;

  /// Top values by frequency (at most kMaxCommonValues), with exact counts.
  /// Used for equality selectivity on skewed string attributes (e.g. the
  /// bookstore `author` attribute).
  std::vector<std::pair<Value, uint64_t>> common_values;

  /// Uniform reservoir sample of non-null values (at most kMaxSampleValues).
  /// Used to estimate predicates statistics cannot express analytically —
  /// `contains` / `startswith` selectivity is the matching fraction of the
  /// sample.
  std::vector<Value> sample_values;

  static constexpr size_t kMaxCommonValues = 32;
  static constexpr size_t kMaxSampleValues = 128;
};

/// Statistics for one table. Built by a single scan; immutable afterwards.
class TableStats {
 public:
  TableStats() = default;

  /// Scans `table` and computes row count plus per-attribute stats.
  /// `histogram_buckets` controls equi-depth histogram resolution.
  static TableStats Compute(const Table& table, size_t histogram_buckets = 16);

  uint64_t num_rows() const { return num_rows_; }

  const AttributeStats& attribute(int index) const {
    return attributes_[static_cast<size_t>(index)];
  }
  size_t num_attributes() const { return attributes_.size(); }

  /// Exact frequency of `value` if it is a tracked common value.
  std::optional<uint64_t> CommonValueCount(int attr, const Value& value) const;

 private:
  uint64_t num_rows_ = 0;
  std::vector<AttributeStats> attributes_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_STORAGE_TABLE_STATS_H_
