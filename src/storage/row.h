#ifndef GENCOMPACT_STORAGE_ROW_H_
#define GENCOMPACT_STORAGE_ROW_H_

#include <cassert>
#include <string>
#include <vector>

#include "common/value.h"
#include "schema/attribute_set.h"

namespace gencompact {

/// One tuple. A Row is always interpreted relative to an attribute layout:
/// either a full relation schema (values in schema order) or a projected
/// layout (values in ascending order of the projected attribute positions —
/// see RowLayout).
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values)
      : values_(std::move(values)), hash_(ComputeHash(values_)) {}

  /// Trusted fast path for the columnar data plane: `hash` MUST equal
  /// ComputeHash(values) — the caller folded it from cached per-cell hashes
  /// instead of re-hashing the payloads (asserted in debug builds).
  Row(std::vector<Value> values, size_t hash)
      : values_(std::move(values)), hash_(hash) {
    assert(hash_ == ComputeHash(values_));
  }

  size_t size() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  bool operator==(const Row& other) const { return values_ == other.values_; }

  /// Cached: computed once at construction (rows are immutable), so set
  /// insertion, dedup and rehashing never re-fold the values.
  size_t Hash() const { return hash_; }

  /// Continues the sequential value fold from `h`:
  /// ExtendHash(a.Hash(), b) == Row(a ++ b).Hash(). The join build/probe
  /// path composes a concatenated row's hash from the left row's cached
  /// hash plus the appended values, then hands it to the trusted-hash
  /// constructor without re-folding the left side.
  static size_t ExtendHash(size_t h, const Value* values, size_t count);
  static size_t ExtendHash(size_t h, const std::vector<Value>& values) {
    return ExtendHash(h, values.data(), values.size());
  }

  /// ComputeHash({}) — the fold seed ExtendHash starts from.
  static constexpr size_t kEmptyHash = 0x51ed270b7a2cf321ull;

  std::string ToString() const;

 private:
  static size_t ComputeHash(const std::vector<Value>& values) {
    return ExtendHash(kEmptyHash, values);
  }

  std::vector<Value> values_;
  size_t hash_ = kEmptyHash;
};

struct RowHash {
  size_t operator()(const Row& row) const { return row.Hash(); }
};

/// Maps schema attribute positions to slots of a projected Row. A projected
/// row produced for AttributeSet A stores values in ascending attribute-index
/// order; RowLayout answers "which slot holds attribute i".
class RowLayout {
 public:
  /// Layout of a projection to `attrs` of a relation with `schema_width`
  /// attributes.
  RowLayout(AttributeSet attrs, size_t schema_width);

  const AttributeSet& attrs() const { return attrs_; }

  /// Slot of schema attribute `index`, or -1 if not present.
  int SlotOf(int index) const {
    return index >= 0 && static_cast<size_t>(index) < slot_of_.size()
               ? slot_of_[index]
               : -1;
  }

  bool HasAttribute(int index) const { return SlotOf(index) >= 0; }

  size_t width() const { return attrs_.size(); }

  /// Projects `row` (laid out by `this`) down to `narrower` attributes,
  /// which must be a subset of attrs().
  Row Project(const Row& row, const RowLayout& narrower) const;

 private:
  AttributeSet attrs_;
  std::vector<int> slot_of_;  // schema index -> slot, -1 if absent
};

}  // namespace gencompact

#endif  // GENCOMPACT_STORAGE_ROW_H_
