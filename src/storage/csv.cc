#include "storage/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace gencompact {

namespace {

struct CsvField {
  std::string text;
  bool quoted = false;
};

/// Splits one CSV record (no embedded newlines in this dialect).
Result<std::vector<CsvField>> SplitRecord(std::string_view line, size_t lineno) {
  std::vector<CsvField> fields;
  CsvField current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.text += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.text += c;
      }
    } else if (c == '"' && current.text.empty()) {
      in_quotes = true;
      current.quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current = CsvField{};
    } else {
      current.text += c;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("CSV line " + std::to_string(lineno) +
                                   ": unterminated quoted field");
  }
  fields.push_back(std::move(current));
  return fields;
}

Result<Value> Coerce(const CsvField& field, ValueType type, size_t lineno) {
  if (field.text.empty() && !field.quoted) return Value::Null();
  const std::string trimmed(field.quoted ? std::string_view(field.text)
                                         : StripWhitespace(field.text));
  switch (type) {
    case ValueType::kString:
      return Value::String(field.quoted ? field.text : trimmed);
    case ValueType::kInt: {
      try {
        size_t used = 0;
        const int64_t v = std::stoll(trimmed, &used);
        if (used != trimmed.size()) throw std::invalid_argument(trimmed);
        return Value::Int(v);
      } catch (const std::exception&) {
        return Status::InvalidArgument("CSV line " + std::to_string(lineno) +
                                       ": '" + trimmed + "' is not an int");
      }
    }
    case ValueType::kDouble: {
      try {
        size_t used = 0;
        const double v = std::stod(trimmed, &used);
        if (used != trimmed.size()) throw std::invalid_argument(trimmed);
        return Value::Double(v);
      } catch (const std::exception&) {
        return Status::InvalidArgument("CSV line " + std::to_string(lineno) +
                                       ": '" + trimmed + "' is not a double");
      }
    }
    case ValueType::kBool: {
      const std::string lower = ToLower(trimmed);
      if (lower == "true" || lower == "1") return Value::Bool(true);
      if (lower == "false" || lower == "0") return Value::Bool(false);
      return Status::InvalidArgument("CSV line " + std::to_string(lineno) +
                                     ": '" + trimmed + "' is not a bool");
    }
    case ValueType::kNull:
      return Value::Null();
  }
  return Status::Internal("unknown value type");
}

}  // namespace

Result<std::unique_ptr<Table>> LoadCsv(std::string_view text,
                                       const std::string& table_name,
                                       const Schema& schema,
                                       bool expect_header) {
  auto table = std::make_unique<Table>(table_name, schema);
  size_t lineno = 0;
  size_t start = 0;
  bool header_pending = expect_header;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = end + 1;
    ++lineno;
    if (StripWhitespace(line).empty()) {
      if (start > text.size()) break;
      continue;
    }

    GC_ASSIGN_OR_RETURN(const std::vector<CsvField> fields,
                        SplitRecord(line, lineno));
    if (fields.size() != schema.num_attributes()) {
      return Status::InvalidArgument(
          "CSV line " + std::to_string(lineno) + ": " +
          std::to_string(fields.size()) + " fields, schema has " +
          std::to_string(schema.num_attributes()));
    }
    if (header_pending) {
      header_pending = false;
      for (size_t i = 0; i < fields.size(); ++i) {
        const std::string name(StripWhitespace(fields[i].text));
        if (name != schema.attribute(static_cast<int>(i)).name) {
          return Status::InvalidArgument(
              "CSV header column " + std::to_string(i + 1) + " is '" + name +
              "', schema expects '" +
              schema.attribute(static_cast<int>(i)).name + "'");
        }
      }
      continue;
    }
    std::vector<Value> values;
    values.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      GC_ASSIGN_OR_RETURN(
          Value v,
          Coerce(fields[i], schema.attribute(static_cast<int>(i)).type, lineno));
      values.push_back(std::move(v));
    }
    GC_RETURN_IF_ERROR(table->Append(Row(std::move(values))));
  }
  return table;
}

Result<std::unique_ptr<Table>> LoadCsvFile(const std::string& path,
                                           const std::string& table_name,
                                           const Schema& schema,
                                           bool expect_header) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsv(buffer.str(), table_name, schema, expect_header);
}

std::string WriteCsv(const Table& table) {
  const Schema& schema = table.schema();
  std::string out;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out += ',';
    out += schema.attribute(static_cast<int>(i)).name;
  }
  out += '\n';
  const auto emit = [&out](const Value& v) {
    if (v.is_null()) return;
    std::string text;
    switch (v.type()) {
      case ValueType::kString:
        text = v.string_value();
        break;
      case ValueType::kBool:
        text = v.bool_value() ? "true" : "false";
        break;
      default:
        text = v.ToString();
        break;
    }
    const bool needs_quotes =
        v.type() == ValueType::kString &&
        (text.find_first_of(",\"\n") != std::string::npos || text.empty() ||
         std::isspace(static_cast<unsigned char>(text.front())) ||
         std::isspace(static_cast<unsigned char>(text.back())));
    if (!needs_quotes) {
      out += text;
      return;
    }
    out += '"';
    for (char c : text) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
  };
  for (const Row& row : table.rows()) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      emit(row.value(i));
    }
    out += '\n';
  }
  return out;
}

}  // namespace gencompact
