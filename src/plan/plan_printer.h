#ifndef GENCOMPACT_PLAN_PLAN_PRINTER_H_
#define GENCOMPACT_PLAN_PLAN_PRINTER_H_

#include <string>

#include "cost/cost_model.h"
#include "plan/plan.h"
#include "schema/schema.h"

namespace gencompact {

/// Renders a plan as an indented tree. With a cost model, annotates each
/// source query with its estimated result rows and cost (EXPLAIN-style).
std::string PrintPlan(const PlanNode& plan, const Schema& schema,
                      const CostModel* cost_model = nullptr);

}  // namespace gencompact

#endif  // GENCOMPACT_PLAN_PLAN_PRINTER_H_
