#include "plan/plan_printer.h"

#include <sstream>

namespace gencompact {

namespace {

void PrintNode(const PlanNode& plan, const Schema& schema,
               const CostModel* cost_model, const std::string& indent,
               bool last, std::ostringstream* out) {
  *out << indent;
  std::string child_indent = indent;
  if (!indent.empty()) {
    *out << (last ? "`- " : "|- ");
    child_indent += last ? "   " : "|  ";
  } else {
    child_indent = "  ";
  }
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery: {
      *out << "SourceQuery cond=[" << plan.condition()->ToString()
           << "] attrs=" << plan.attrs().ToString(schema);
      if (cost_model != nullptr) {
        *out << " est_rows="
             << cost_model->EstimateResultRows(*plan.condition(), plan.attrs())
             << " cost="
             << cost_model->SourceQueryCost(*plan.condition(), plan.attrs());
      }
      break;
    }
    case PlanNode::Kind::kMediatorSp:
      *out << "MediatorSelectProject cond=[" << plan.condition()->ToString()
           << "] attrs=" << plan.attrs().ToString(schema);
      break;
    case PlanNode::Kind::kUnion:
      *out << "Union attrs=" << plan.attrs().ToString(schema);
      break;
    case PlanNode::Kind::kIntersect:
      *out << "Intersect attrs=" << plan.attrs().ToString(schema);
      break;
    case PlanNode::Kind::kChoice:
      *out << "Choice (" << plan.children().size() << " alternatives)";
      break;
  }
  if (cost_model != nullptr && plan.kind() != PlanNode::Kind::kSourceQuery) {
    *out << " total_cost=" << cost_model->PlanCost(plan);
  }
  *out << "\n";
  for (size_t i = 0; i < plan.children().size(); ++i) {
    PrintNode(*plan.children()[i], schema, cost_model, child_indent,
              i + 1 == plan.children().size(), out);
  }
}

}  // namespace

std::string PrintPlan(const PlanNode& plan, const Schema& schema,
                      const CostModel* cost_model) {
  std::ostringstream out;
  PrintNode(plan, schema, cost_model, "", true, &out);
  return out.str();
}

}  // namespace gencompact
