#include "plan/bounded.h"

#include <optional>
#include <utility>
#include <vector>

#include "expr/normal_forms.h"

namespace gencompact {
namespace {

/// DNF terms kept small: refinement is a planning-time rewrite and a
/// combinatorial blow-up would itself be a planning failure mode.
constexpr size_t kMaxRefinementTerms = 64;

/// The candidate refinement pieces of C: its DNF disjuncts. nullopt when C
/// does not split (single term — refinement has nothing to divide) or the
/// DNF would explode.
std::optional<std::vector<ConditionPtr>> RefinementPieces(
    const ConditionPtr& cond) {
  Result<ConditionPtr> dnf = ToDnf(cond, kMaxRefinementTerms);
  if (!dnf.ok()) return std::nullopt;
  const ConditionPtr& normalized = *dnf;
  if (normalized->kind() != ConditionNode::Kind::kOr) return std::nullopt;
  return normalized->children();
}

/// True iff every piece is individually answerable: the capability grammar
/// accepts SP(piece, attrs) and the estimate fits in one bounded response.
bool PiecesFit(const std::vector<ConditionPtr>& pieces,
               const AttributeSet& attrs, const ResultBound& bound,
               const CostModel& cost, Checker* checker) {
  for (const ConditionPtr& piece : pieces) {
    if (cost.EstimateResultRows(*piece, attrs) >
        static_cast<double>(bound.result_bound)) {
      return false;
    }
    if (checker != nullptr && !checker->Supports(*piece, attrs)) return false;
  }
  return true;
}

/// Largest row count a paging loop can recover before the access limit cuts
/// it off (0 = unlimited).
double PagingCeiling(const ResultBound& bound) {
  if (bound.max_accesses == 0) return 0.0;
  return static_cast<double>(bound.max_accesses) *
         static_cast<double>(bound.EffectivePageSize());
}

PlanPtr Rewrite(const PlanPtr& plan, const ResultBound& bound,
                const CostModel& cost, Checker* checker, size_t* splits) {
  switch (plan->kind()) {
    case PlanNode::Kind::kSourceQuery: {
      if (ClassifySourceQuery(plan->condition(), plan->attrs(), bound, cost,
                              checker) != BoundedOutcome::kExactViaRefinement) {
        return plan;
      }
      std::optional<std::vector<ConditionPtr>> pieces =
          RefinementPieces(plan->condition());
      // Classification already validated the pieces; re-derive them here so
      // the rewrite has no hidden state to fall out of sync with.
      if (!pieces.has_value()) return plan;
      std::vector<PlanPtr> children;
      children.reserve(pieces->size());
      for (ConditionPtr& piece : *pieces) {
        children.push_back(
            PlanNode::SourceQuery(std::move(piece), plan->attrs()));
      }
      ++*splits;
      return PlanNode::UnionOf(std::move(children));
    }
    case PlanNode::Kind::kMediatorSp: {
      PlanPtr child = Rewrite(plan->children()[0], bound, cost, checker,
                              splits);
      if (child == plan->children()[0]) return plan;
      return PlanNode::MediatorSp(plan->condition(), plan->attrs(),
                                  std::move(child));
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect:
    case PlanNode::Kind::kChoice: {
      std::vector<PlanPtr> children;
      children.reserve(plan->children().size());
      bool changed = false;
      for (const PlanPtr& child : plan->children()) {
        PlanPtr rewritten = Rewrite(child, bound, cost, checker, splits);
        changed = changed || rewritten != child;
        children.push_back(std::move(rewritten));
      }
      if (!changed) return plan;
      switch (plan->kind()) {
        case PlanNode::Kind::kUnion:
          return PlanNode::UnionOf(std::move(children));
        case PlanNode::Kind::kIntersect:
          return PlanNode::IntersectOf(std::move(children));
        default:
          return PlanNode::Choice(std::move(children));
      }
    }
  }
  return plan;
}

}  // namespace

const char* ToString(BoundedOutcome outcome) {
  switch (outcome) {
    case BoundedOutcome::kUnbounded:
      return "unbounded";
    case BoundedOutcome::kFitsUnderBound:
      return "fits-under-bound";
    case BoundedOutcome::kExactViaPaging:
      return "exact-via-paging";
    case BoundedOutcome::kExactViaRefinement:
      return "exact-via-refinement";
    case BoundedOutcome::kLikelyPartial:
      return "likely-partial";
  }
  return "unknown";
}

BoundedOutcome ClassifySourceQuery(const ConditionPtr& cond,
                                   const AttributeSet& attrs,
                                   const ResultBound& bound,
                                   const CostModel& cost, Checker* checker) {
  if (!bound.bounded()) return BoundedOutcome::kUnbounded;
  const double est = cost.EstimateResultRows(*cond, attrs);
  if (est <= static_cast<double>(bound.result_bound)) {
    return BoundedOutcome::kFitsUnderBound;
  }
  if (bound.supports_paging) {
    const double ceiling = PagingCeiling(bound);
    if (ceiling == 0.0 || est <= ceiling) {
      return BoundedOutcome::kExactViaPaging;
    }
    // The access limit cuts the loop off before exhaustion; fall through to
    // refinement — splitting the condition may still recover exactness.
  }
  std::optional<std::vector<ConditionPtr>> pieces = RefinementPieces(cond);
  if (pieces.has_value() &&
      PiecesFit(*pieces, attrs, bound, cost, checker)) {
    return BoundedOutcome::kExactViaRefinement;
  }
  return BoundedOutcome::kLikelyPartial;
}

BoundedRefinement RefineBoundedPlan(const PlanPtr& plan,
                                    const ResultBound& bound,
                                    const CostModel& cost, Checker* checker) {
  BoundedRefinement result;
  result.splits = 0;
  if (plan == nullptr || !bound.bounded()) {
    result.plan = plan;
    return result;
  }
  result.plan = Rewrite(plan, bound, cost, checker, &result.splits);
  return result;
}

}  // namespace gencompact
