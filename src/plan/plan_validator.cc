#include "plan/plan_validator.h"

namespace gencompact {

namespace {

Status Validate(const PlanNode& plan, Checker* checker, const Schema& schema) {
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery: {
      if (!checker->Supports(*plan.condition(), plan.attrs())) {
        return Status::Unsupported(
            "source query not supported: SP(" + plan.condition()->ToString() +
            ", " + plan.attrs().ToString(schema) + ")");
      }
      return Status::OK();
    }
    case PlanNode::Kind::kMediatorSp: {
      const PlanNode& child = *plan.children().front();
      GC_RETURN_IF_ERROR(Validate(child, checker, schema));
      GC_ASSIGN_OR_RETURN(const AttributeSet cond_attrs,
                          plan.condition()->Attributes(schema));
      if (!cond_attrs.IsSubsetOf(child.attrs())) {
        return Status::Unsupported(
            "mediator selection [" + plan.condition()->ToString() +
            "] references attributes missing from its input " +
            child.attrs().ToString(schema));
      }
      if (!plan.attrs().IsSubsetOf(child.attrs())) {
        return Status::Unsupported(
            "mediator projection to " + plan.attrs().ToString(schema) +
            " requires attributes missing from its input " +
            child.attrs().ToString(schema));
      }
      return Status::OK();
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect: {
      for (const PlanPtr& child : plan.children()) {
        GC_RETURN_IF_ERROR(Validate(*child, checker, schema));
        if (child->attrs() != plan.attrs()) {
          return Status::Unsupported(
              "set operation children disagree on output attributes: " +
              child->attrs().ToString(schema) + " vs " +
              plan.attrs().ToString(schema));
        }
      }
      return Status::OK();
    }
    case PlanNode::Kind::kChoice:
      return Status::Internal(
          "plan contains an unresolved Choice node; resolve with the cost "
          "module before validation/execution");
  }
  return Status::Internal("unknown plan kind");
}

}  // namespace

Status ValidatePlan(const PlanNode& plan, Checker* checker) {
  return Validate(plan, checker, checker->description().schema());
}

Status ValidatePlanFor(const PlanNode& plan, const AttributeSet& expected_attrs,
                       Checker* checker) {
  if (plan.attrs() != expected_attrs) {
    return Status::Unsupported(
        "plan output attributes " +
        plan.attrs().ToString(checker->description().schema()) +
        " differ from requested " +
        expected_attrs.ToString(checker->description().schema()));
  }
  return ValidatePlan(plan, checker);
}

bool PlanAvoids(const PlanNode& plan, const SubQueryAvoidSet& avoid) {
  if (plan.kind() == PlanNode::Kind::kSourceQuery &&
      avoid.count(SubQueryKey(*plan.condition(), plan.attrs())) > 0) {
    return false;
  }
  for (const PlanPtr& child : plan.children()) {
    if (!PlanAvoids(*child, avoid)) return false;
  }
  return true;
}

}  // namespace gencompact
