#ifndef GENCOMPACT_PLAN_PLAN_H_
#define GENCOMPACT_PLAN_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/condition.h"
#include "schema/attribute_set.h"

namespace gencompact {

class PlanNode;

/// Plans are immutable and shared: the plan generators build large spaces of
/// alternatives with heavy sub-plan reuse.
using PlanPtr = std::shared_ptr<const PlanNode>;

/// A mediator query plan (Section 3): a tree of source queries plus
/// postprocessing operations (mediator selection/projection, union,
/// intersection). `Choice` nodes appear only in EPG's compact plan spaces
/// (Section 5.3) and must be resolved by the cost module before execution.
class PlanNode {
 public:
  enum class Kind {
    kSourceQuery,  ///< SP(C, A, R) evaluated by the source
    kMediatorSp,   ///< SP(C, A, child): mediator selection + projection
    kUnion,        ///< mediator ∪ of children (same output attrs)
    kIntersect,    ///< mediator ∩ of children (same output attrs)
    kChoice,       ///< exactly one child is to be picked by the cost module
  };

  /// A source query SP(condition, attrs, R). The target source is implicit:
  /// the paper's selection queries address a single relation R.
  static PlanPtr SourceQuery(ConditionPtr condition, AttributeSet attrs);

  /// Mediator postprocessing SP(condition, attrs, child): filter the child's
  /// result by `condition`, then project to `attrs`.
  static PlanPtr MediatorSp(ConditionPtr condition, AttributeSet attrs,
                            PlanPtr child);

  /// Mediator set union of >= 1 children; a single child is returned as-is.
  static PlanPtr UnionOf(std::vector<PlanPtr> children);

  /// Mediator set intersection of >= 1 children.
  static PlanPtr IntersectOf(std::vector<PlanPtr> children);

  /// An EPG plan-space node: any one child answers the query.
  static PlanPtr Choice(std::vector<PlanPtr> children);

  Kind kind() const { return kind_; }
  bool is_choice() const { return kind_ == Kind::kChoice; }

  /// The condition of a kSourceQuery / kMediatorSp node.
  const ConditionPtr& condition() const { return condition_; }

  /// Output attribute set of this node.
  const AttributeSet& attrs() const { return attrs_; }

  const std::vector<PlanPtr>& children() const { return children_; }

  /// Collects pointers to every kSourceQuery node (Choice-free plans only;
  /// Internal error behaviour: Choice children are skipped).
  void CollectSourceQueries(std::vector<const PlanNode*>* out) const;

  size_t CountSourceQueries() const;

  /// Number of plan nodes.
  size_t Size() const;

  /// True iff the plan contains no Choice node (is directly executable).
  bool IsResolved() const;

  /// Compact single-line rendering, e.g.
  /// `(SQ[c1 and c2 -> {a,b}] ∩ SP[c3 -> {a}](SQ[...]))`.
  std::string ToShortString() const;

  /// Number of distinct resolved plans this (possibly Choice-bearing) plan
  /// space denotes: Choice sums its children, set operations multiply
  /// theirs. Saturates at `cap` (EPG spaces grow combinatorially). A
  /// resolved plan counts 1.
  size_t CountAlternatives(size_t cap = 1000000) const;

 private:
  PlanNode(Kind kind, ConditionPtr condition, AttributeSet attrs,
           std::vector<PlanPtr> children)
      : kind_(kind),
        condition_(std::move(condition)),
        attrs_(attrs),
        children_(std::move(children)) {}

  Kind kind_;
  ConditionPtr condition_;  // kSourceQuery / kMediatorSp
  AttributeSet attrs_;
  std::vector<PlanPtr> children_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_PLAN_PLAN_H_
