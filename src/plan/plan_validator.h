#ifndef GENCOMPACT_PLAN_PLAN_VALIDATOR_H_
#define GENCOMPACT_PLAN_PLAN_VALIDATOR_H_

#include "common/status.h"
#include "plan/plan.h"
#include "plan/sub_query_key.h"
#include "ssdl/check.h"

namespace gencompact {

/// Verifies the paper's feasibility guarantee for a resolved plan:
///  * every source query SP(C, A, R) is supported per Check (A is a subset
///    of some exported attribute family member for C);
///  * every mediator selection only references attributes its child
///    provides, and every node's output attrs are available;
///  * union/intersect children agree on output attributes;
///  * no unresolved Choice nodes remain.
///
/// Returns OK, or the first violation found. Used by tests (invariant 1 of
/// DESIGN.md) and as a safety net before execution.
Status ValidatePlan(const PlanNode& plan, Checker* checker);

/// As ValidatePlan, but additionally requires the plan's output attribute
/// set to equal `expected_attrs`.
Status ValidatePlanFor(const PlanNode& plan, const AttributeSet& expected_attrs,
                       Checker* checker);

/// True iff no source query of `plan` (recursively, including Choice
/// children) matches an identity in `avoid` — i.e. the plan routes around
/// every avoided sub-query.
bool PlanAvoids(const PlanNode& plan, const SubQueryAvoidSet& avoid);

}  // namespace gencompact

#endif  // GENCOMPACT_PLAN_PLAN_VALIDATOR_H_
