#ifndef GENCOMPACT_PLAN_BOUNDED_H_
#define GENCOMPACT_PLAN_BOUNDED_H_

#include <cstddef>

#include "cost/cost_model.h"
#include "plan/plan.h"
#include "ssdl/check.h"
#include "ssdl/description.h"

namespace gencompact {

/// Planner-side classification of one source query SP(C, A, R) against a
/// result-bounded interface — the three outcomes of the tentpole analysis
/// (see DESIGN.md, "Result bounds & completeness"):
///
///  - exact via a paging loop (the executor drives pages to exhaustion),
///  - exact via condition refinement (split C into selective sub-conditions
///    that each fit under the bound; union the pieces), or
///  - provably partial (no exact strategy exists; the answer will carry a
///    truncation marker).
///
/// Classification uses the cost model's cardinality estimates, so it is a
/// planning-time *prediction*; the executor's runtime truncation marking is
/// the safety net that keeps "zero silently-truncated answers" true even
/// when an estimate is wrong.
enum class BoundedOutcome {
  kUnbounded,           ///< no result bound in force — nothing to do
  kFitsUnderBound,      ///< estimate fits in one bounded response
  kExactViaPaging,      ///< over bound, but the paging loop recovers it all
  kExactViaRefinement,  ///< over bound, non-paging, but C splits into
                        ///< supported sub-conditions that each fit
  kLikelyPartial,       ///< over bound with no exact strategy in sight
};

const char* ToString(BoundedOutcome outcome);

/// Classifies SP(cond, attrs, R) against `bound`. `cost` supplies
/// cardinality estimates; `checker` validates that refinement pieces stay
/// inside the source's capability grammar (a piece the source rejects is no
/// refinement at all).
BoundedOutcome ClassifySourceQuery(const ConditionPtr& cond,
                                   const AttributeSet& attrs,
                                   const ResultBound& bound,
                                   const CostModel& cost, Checker* checker);

/// Result of rewriting a plan around a bounded interface.
struct BoundedRefinement {
  PlanPtr plan;       ///< rewritten plan (== input when nothing changed)
  size_t splits = 0;  ///< source queries replaced by unions of refinements
};

/// Walks `plan` and replaces every kSourceQuery classified
/// kExactViaRefinement with a union of per-piece source queries, each piece
/// a DNF disjunct of the original condition that (a) the capability grammar
/// accepts and (b) is estimated to fit under the bound. Semantics-preserving
/// under set semantics: SP(C1 ∨ C2, A, R) = SP(C1, A, R) ∪ SP(C2, A, R).
/// Unchanged subtrees are shared with the input.
BoundedRefinement RefineBoundedPlan(const PlanPtr& plan,
                                    const ResultBound& bound,
                                    const CostModel& cost, Checker* checker);

}  // namespace gencompact

#endif  // GENCOMPACT_PLAN_BOUNDED_H_
