#include "plan/plan.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace gencompact {

PlanPtr PlanNode::SourceQuery(ConditionPtr condition, AttributeSet attrs) {
  assert(condition != nullptr);
  return PlanPtr(
      new PlanNode(Kind::kSourceQuery, std::move(condition), attrs, {}));
}

PlanPtr PlanNode::MediatorSp(ConditionPtr condition, AttributeSet attrs,
                             PlanPtr child) {
  assert(condition != nullptr && child != nullptr);
  std::vector<PlanPtr> children = {std::move(child)};
  return PlanPtr(new PlanNode(Kind::kMediatorSp, std::move(condition), attrs,
                              std::move(children)));
}

PlanPtr PlanNode::UnionOf(std::vector<PlanPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children.front();
  const AttributeSet attrs = children.front()->attrs();
  return PlanPtr(new PlanNode(Kind::kUnion, nullptr, attrs, std::move(children)));
}

PlanPtr PlanNode::IntersectOf(std::vector<PlanPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children.front();
  const AttributeSet attrs = children.front()->attrs();
  return PlanPtr(
      new PlanNode(Kind::kIntersect, nullptr, attrs, std::move(children)));
}

PlanPtr PlanNode::Choice(std::vector<PlanPtr> children) {
  assert(!children.empty());
  if (children.size() == 1) return children.front();
  const AttributeSet attrs = children.front()->attrs();
  return PlanPtr(new PlanNode(Kind::kChoice, nullptr, attrs, std::move(children)));
}

void PlanNode::CollectSourceQueries(std::vector<const PlanNode*>* out) const {
  if (kind_ == Kind::kSourceQuery) {
    out->push_back(this);
    return;
  }
  for (const PlanPtr& child : children_) {
    child->CollectSourceQueries(out);
  }
}

size_t PlanNode::CountSourceQueries() const {
  std::vector<const PlanNode*> queries;
  CollectSourceQueries(&queries);
  return queries.size();
}

size_t PlanNode::Size() const {
  size_t n = 1;
  for (const PlanPtr& child : children_) n += child->Size();
  return n;
}

bool PlanNode::IsResolved() const {
  if (kind_ == Kind::kChoice) return false;
  for (const PlanPtr& child : children_) {
    if (!child->IsResolved()) return false;
  }
  return true;
}

namespace {

// Memoized count over the plan DAG (EPG memoization shares sub-spaces, so
// naive recursion would revisit them exponentially).
size_t CountImpl(const PlanNode& plan, size_t cap,
                 std::unordered_map<const PlanNode*, size_t>* memo) {
  const auto it = memo->find(&plan);
  if (it != memo->end()) return it->second;
  size_t result = 1;
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery:
      result = 1;
      break;
    case PlanNode::Kind::kMediatorSp:
      result = CountImpl(*plan.children().front(), cap, memo);
      break;
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect: {
      size_t product = 1;
      for (const PlanPtr& child : plan.children()) {
        const size_t n = CountImpl(*child, cap, memo);
        if (product >= cap / std::max<size_t>(n, 1)) {
          product = cap;  // saturate
          break;
        }
        product *= n;
      }
      result = std::min(product, cap);
      break;
    }
    case PlanNode::Kind::kChoice: {
      size_t total = 0;
      for (const PlanPtr& child : plan.children()) {
        total += CountImpl(*child, cap, memo);
        if (total >= cap) {
          total = cap;
          break;
        }
      }
      result = total;
      break;
    }
  }
  memo->emplace(&plan, result);
  return result;
}

}  // namespace

size_t PlanNode::CountAlternatives(size_t cap) const {
  std::unordered_map<const PlanNode*, size_t> memo;
  return CountImpl(*this, cap, &memo);
}

std::string PlanNode::ToShortString() const {
  switch (kind_) {
    case Kind::kSourceQuery:
      return "SQ[" + condition_->ToString() + "]";
    case Kind::kMediatorSp:
      return "SP[" + condition_->ToString() + "](" +
             children_.front()->ToShortString() + ")";
    case Kind::kUnion:
    case Kind::kIntersect:
    case Kind::kChoice: {
      const char* sep = kind_ == Kind::kUnion     ? " U "
                        : kind_ == Kind::kIntersect ? " I "
                                                    : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToShortString();
      }
      out += ")";
      return out;
    }
  }
  return "?";
}

}  // namespace gencompact
