#ifndef GENCOMPACT_PLAN_SUB_QUERY_KEY_H_
#define GENCOMPACT_PLAN_SUB_QUERY_KEY_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "expr/condition.h"
#include "schema/attribute_set.h"

namespace gencompact {

/// POD identity of one sub-query SP(C, A, ·): the interned condition id and
/// the projection bitset. Built with a field load and a bit copy — no
/// allocation, no rendering — so every layer that dedups or memoizes
/// sub-queries (IPG/EPG memo tables, the executor's per-execution fetch
/// dedup) keys on this instead of a concatenated string.
struct SubQueryKey {
  ConditionId condition_id = 0;
  uint64_t attrs_bits = 0;

  SubQueryKey() = default;
  SubQueryKey(const ConditionNode& condition, const AttributeSet& attrs)
      : condition_id(condition.id()), attrs_bits(attrs.bits()) {}

  bool operator==(const SubQueryKey& other) const {
    return condition_id == other.condition_id &&
           attrs_bits == other.attrs_bits;
  }
};

struct SubQueryKeyHash {
  size_t operator()(const SubQueryKey& key) const {
    // splitmix64 finalizer over the xor-folded fields; ids are sequential,
    // so full avalanche keeps the hash table balanced.
    uint64_t x = key.condition_id * 0x9e3779b97f4a7c15ull ^ key.attrs_bits;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// Fingerprint carried into keyed fault schedules and backoff jitter streams
/// (PageRequest::fingerprint): built from the condition's STRUCTURAL
/// fingerprint plus the projection bits, not the intern id. Intern ids are
/// monotonic and never reused, so they depend on the process's allocation
/// history — a sub-query re-interned after its last reference died gets a
/// fresh id. Keying fault schedules on structure instead makes (seed,
/// fingerprint) replay the same schedule for the same logical sub-query in
/// any process, which is what the deterministic-interleaving harness and the
/// async/sync parity fuzzer rely on.
inline uint64_t FaultFingerprint(const ConditionNode& condition,
                                 const AttributeSet& attrs) {
  uint64_t x = condition.fingerprint() * 0x9e3779b97f4a7c15ull ^ attrs.bits();
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A set of sub-query identities the planner must route around — e.g. the
/// SP(C, A, R) fetches that just failed with kUnavailable (see
/// PlannerStrategy::PlanAvoiding and Mediator re-planning).
using SubQueryAvoidSet = std::unordered_set<SubQueryKey, SubQueryKeyHash>;

}  // namespace gencompact

#endif  // GENCOMPACT_PLAN_SUB_QUERY_KEY_H_
