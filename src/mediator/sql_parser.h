#ifndef GENCOMPACT_MEDIATOR_SQL_PARSER_H_
#define GENCOMPACT_MEDIATOR_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "expr/condition.h"

namespace gencompact {

/// A parsed target query (always of the paper's SP form π_A(σ_C(R))).
struct ParsedQuery {
  std::vector<std::string> select_list;  ///< empty means SELECT *
  std::string source;
  ConditionPtr condition;  ///< ConditionNode::True() when no WHERE clause
};

/// Parses the mini-SQL surface syntax of target queries:
///
///   SELECT a, b FROM src WHERE cond
///   SELECT * FROM src
///
/// Keywords are case-insensitive; `cond` uses the condition grammar of
/// ParseCondition (and/or, parentheses, =, !=, <, <=, >, >=, contains,
/// startswith, `attr in {v1, v2}`).
Result<ParsedQuery> ParseSql(std::string_view sql);

/// A parsed two-source join query (the complex-query extension).
struct ParsedJoinQuery {
  std::vector<std::string> select_list;  ///< qualified; empty means *
  std::string left_source;
  std::string right_source;
  /// Equi-join key pairs from the ON clause (left-qualified,
  /// right-qualified).
  std::vector<std::pair<std::string, std::string>> keys;
  ConditionPtr condition;  ///< qualified; True when no WHERE clause
};

/// True if the FROM clause contains a JOIN (dispatch helper).
bool IsJoinQuery(std::string_view sql);

/// Parses
///
///   SELECT l.a, r.b FROM l JOIN r ON l.k = r.k [and l.k2 = r.k2 ...]
///     [WHERE cond-over-qualified-attrs]
///
/// Attribute references in the SELECT list, ON clause, and WHERE condition
/// must be source-qualified ("src.attr").
Result<ParsedJoinQuery> ParseJoinSql(std::string_view sql);

/// An N-source conjunctive query over a query graph: the FROM clause chains
/// JOINs, and every ON term contributes one equi-join edge key pair. Two
/// sources parse to the same information as ParsedJoinQuery (the mediator
/// dispatches that case to the two-source JoinProcessor unchanged).
struct ParsedFederatedQuery {
  std::vector<std::string> select_list;  ///< qualified; empty means *
  std::vector<std::string> sources;      ///< FROM order; at least 2, distinct
  /// Equi-join key pairs from every ON clause (each side qualified).
  std::vector<std::pair<std::string, std::string>> keys;
  ConditionPtr condition;  ///< qualified; True when no WHERE clause
};

/// Parses
///
///   SELECT ... FROM s0 JOIN s1 ON s0.k = s1.k [and ...]
///     [JOIN s2 ON sX.k = s2.k [and ...]]...
///     [WHERE cond-over-qualified-attrs]
///
/// Every JOIN must carry its own ON clause; key-pair sides must be
/// source-qualified. Which relations each pair connects is resolved by the
/// federation processor against the catalog.
Result<ParsedFederatedQuery> ParseFederatedSql(std::string_view sql);

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_SQL_PARSER_H_
