#ifndef GENCOMPACT_MEDIATOR_MEDIATOR_H_
#define GENCOMPACT_MEDIATOR_MEDIATOR_H_

#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "mediator/catalog.h"
#include "mediator/join.h"
#include "mediator/sql_parser.h"
#include "plan/plan_validator.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"

namespace gencompact {

/// The end-to-end mediator (Section 3): target queries come in (as SQL text
/// or as condition + projection), a capability-sensitive plan is generated
/// with the configured strategy, validated, executed against the
/// capability-enforcing source, and the postprocessed result returned.
///
/// Query() is safe to call from many client threads at once (see DESIGN.md
/// "Concurrency model"): the plan cache is sharded and internally locked,
/// planning runs concurrently per source (the Checker's memo is thread-safe
/// and keyed by interned condition ids; only its Earley recognizer
/// serializes, on memo misses), and execution — the latency-dominated part
/// — runs lock-free against immutable tables. Register sources before
/// starting concurrent queries.
class Mediator {
 public:
  struct Options {
    Strategy default_strategy = Strategy::kGenCompact;
    /// Worker threads for parallel plan execution (independent Union /
    /// Intersection children dispatched concurrently). 0 = sequential.
    size_t num_threads = 0;
    /// Independently locked LRU shards of the plan cache. 1 = a single
    /// global LRU; use ≥ the expected client-thread count under load.
    size_t cache_shards = 1;
    /// Total plan-cache capacity, split across shards.
    size_t cache_capacity = 256;
  };

  explicit Mediator(Strategy default_strategy = Strategy::kGenCompact)
      : Mediator(Options{default_strategy, 0, 1, 256}) {}

  explicit Mediator(const Options& options)
      : default_strategy_(options.default_strategy),
        plan_cache_(options.cache_capacity, options.cache_shards),
        pool_(options.num_threads > 0
                  ? std::make_unique<ThreadPool>(options.num_threads)
                  : nullptr) {}

  /// Registers a simulated Internet source (takes ownership of the table).
  Status RegisterSource(SourceDescription description,
                        std::unique_ptr<Table> table);

  struct QueryResult {
    RowSet rows;
    PlanPtr plan;
    double estimated_cost = 0.0;
    ExecStats exec;           ///< true transfer statistics
    double true_cost = 0.0;   ///< Equation-1 cost with actual row counts
  };

  /// Runs a mini-SQL target query with the default strategy. Join queries
  /// (`SELECT ... FROM a JOIN b ON ...`) are dispatched to QueryJoin.
  Result<QueryResult> Query(const std::string& sql) {
    return Query(sql, default_strategy_);
  }
  Result<QueryResult> Query(const std::string& sql, Strategy strategy);

  /// Two-source equi-join queries — the complex-query extension ([2]):
  /// every per-source building block is planned with GenCompact, and the
  /// right side may be evaluated as a capability-sensitive bind-join.
  /// QueryResult::plan is the left-side plan; exec/true_cost aggregate both
  /// sides.
  Result<QueryResult> QueryJoin(const std::string& sql,
                                JoinProcessor::Options options = {});

  /// Programmatic form: SP(condition, attrs, source).
  Result<QueryResult> QueryCondition(const std::string& source,
                                     const ConditionPtr& condition,
                                     const std::vector<std::string>& attrs,
                                     Strategy strategy);

  /// Plans without executing; returns the validated plan.
  Result<PlanPtr> Explain(const std::string& sql, Strategy strategy);

  /// Human-readable plan rendering for a query.
  Result<std::string> ExplainText(const std::string& sql, Strategy strategy);

  /// EXPLAIN ANALYZE: plans, executes, and renders the plan together with a
  /// per-source-query table of estimated vs actual result rows — the
  /// standard way to debug the cost model on a live query. (The source
  /// queries run once for the real execution and once for the per-query
  /// row counts.)
  Result<std::string> ExplainAnalyze(const std::string& sql, Strategy strategy);

  Catalog* catalog() { return &catalog_; }

  /// Plan-cache statistics (mediators see the same form queries over and
  /// over; repeated queries skip planning entirely).
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// Enables/disables the semantics-preserving condition simplification
  /// pre-pass (on by default). Unsatisfiable conditions short-circuit to an
  /// empty result without contacting the source.
  void set_simplify_conditions(bool enabled) { simplify_conditions_ = enabled; }

 private:
  struct Prepared {
    CatalogEntry* entry = nullptr;
    ConditionPtr condition;
    AttributeSet attrs;
    bool unsatisfiable = false;
  };
  Result<Prepared> Prepare(const std::string& sql);
  Result<Prepared> PrepareParts(CatalogEntry* entry, ConditionPtr condition,
                                const std::vector<std::string>& attrs);
  Result<PlanPtr> PlanPrepared(const Prepared& prepared, Strategy strategy);
  Result<QueryResult> ExecutePrepared(const Prepared& prepared,
                                      Strategy strategy);

  Strategy default_strategy_;
  Catalog catalog_;
  PlanCache plan_cache_;
  std::unique_ptr<ThreadPool> pool_;
  bool simplify_conditions_ = true;
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_MEDIATOR_H_
