#ifndef GENCOMPACT_MEDIATOR_MEDIATOR_H_
#define GENCOMPACT_MEDIATOR_MEDIATOR_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "expr/intern.h"
#include "exec/admission.h"
#include "exec/async_scheduler.h"
#include "exec/executor.h"
#include "mediator/catalog.h"
#include "mediator/federation.h"
#include "mediator/join.h"
#include "mediator/sql_parser.h"
#include "plan/plan_validator.h"
#include "planner/plan_cache.h"
#include "planner/planner.h"

namespace gencompact {

/// The end-to-end mediator (Section 3): target queries come in (as SQL text
/// or as condition + projection), a capability-sensitive plan is generated
/// with the configured strategy, validated, executed against the
/// capability-enforcing source, and the postprocessed result returned.
///
/// Query() is safe to call from many client threads at once (see DESIGN.md
/// "Concurrency model"): the plan cache is sharded and internally locked,
/// planning runs concurrently per source (the Checker's memo is thread-safe
/// and keyed by interned condition ids; only its Earley recognizer
/// serializes, on memo misses), and execution — the latency-dominated part
/// — runs lock-free against immutable tables. Register sources before
/// starting concurrent queries.
class Mediator {
 public:
  struct Options {
    Strategy default_strategy = Strategy::kGenCompact;
    /// Worker threads for parallel plan execution (independent Union /
    /// Intersection children dispatched concurrently). 0 = sequential.
    size_t num_threads = 0;
    /// Independently locked LRU shards of the plan cache. 1 = a single
    /// global LRU; use ≥ the expected client-thread count under load.
    size_t cache_shards = 1;
    /// Total plan-cache capacity, split across shards.
    size_t cache_capacity = 256;

    /// Batch width of the data plane (0 = off, the default). 0 runs the
    /// row-at-a-time reference path everywhere — results are bit-identical
    /// to the original mediator. > 0 runs source scans, wrapper transfers,
    /// mediator SPs, and set-operation combines through the columnar batch
    /// path (vectorized SP(C,A,R) kernels over selection vectors, batch
    /// hashing for duplicate elimination, compact columnar wire encoding);
    /// results are value-identical. Typical widths: 64–4096.
    size_t batch_width = 0;

    // ---- Cross-query Check memo (off by default: planner output with the
    // ---- memo disabled is bit-identical to a build without it). ----

    /// Capacity of the shared second-level Check memo: an LRU of
    /// (condition fingerprint, source id, description epoch) → maximal
    /// export sets, consulted by every source's Checker on first-level miss
    /// and populated on Earley completion. Carries Check results across
    /// queries that plan, die, and recur (the first-level memo is keyed by
    /// interned ConditionId and dies with the condition). 0 = disabled.
    size_t check_memo_capacity = 0;
    /// Independently locked LRU shards of the Check memo.
    size_t check_memo_shards = 8;
    /// Fraction of Check-memo hits re-verified against a fresh Earley run
    /// (deterministic 1-in-round(1/rate) sampling; 1.0 = every hit). A
    /// mismatch — fingerprint collision or stale entry — is counted in the
    /// stats snapshot and the entry repaired. CI runs one leg at 1.0.
    double check_memo_verify_rate = 0.0;

    // ---- Fault tolerance (all off by default: zero-fault parity). ----

    /// Per-sub-query retry/backoff/deadline discipline (max_attempts = 1
    /// disables retries entirely).
    RetryPolicy retry;
    /// Attach a per-source circuit breaker to every source registered
    /// after this option is set.
    bool enable_circuit_breaker = false;
    CircuitBreakerOptions breaker;
    /// Degrade failed ∨-branches into partial answers with a completeness
    /// annotation instead of failing the query (∧/∩ failures still fail).
    bool partial_results = false;
    /// After a retryable execution failure, ask the planner for the
    /// cheapest feasible plan that avoids the failed sub-queries and run
    /// that before giving up.
    bool replan_on_failure = false;
    /// Time source for backoff/breaker/deadlines; null = Clock::Real().
    /// Tests inject a FakeClock for instantaneous, deterministic schedules.
    Clock* clock = nullptr;

    // ---- Latency-aware resilience (all off by default: zero-fault
    // ---- parity with the plain mediator). ----

    /// Hedged requests: when a sub-query outlives the source's tracked
    /// latency quantile, race one backup attempt and adopt the first
    /// success (see HedgePolicy). Enabling this also enables per-source
    /// latency tracking for sources registered afterwards.
    HedgePolicy hedge;
    /// Feed each source's streaming latency digest even when hedging is
    /// off, so the stats snapshot carries per-source latency percentiles.
    bool track_latency = false;
    /// Breaker-aware planning: before each planning pass, refresh the
    /// source's k1 cost-penalty multiplier from its breaker state and
    /// latency tail (see CostPenaltyOptions). While the multiplier is
    /// above 1, plans are neither looked up in nor written to the plan
    /// cache — penalized costs never leak into the cached key space.
    bool breaker_aware_costs = false;
    CostPenaltyOptions cost_penalty;
    /// Load shedding: when the query's source breaker is (effectively)
    /// open, fail fast with kUnavailable before planning or executing
    /// anything, instead of burning a breaker-rejected execution.
    bool load_shedding = false;
    /// Cross-source failover for joins: populate the join processor's
    /// right_alternates with schema-compatible catalog entries, so the
    /// non-driving side falls over to a replica on retryable failure.
    bool join_failover = false;

    // ---- Result-bounded sources (no-ops unless a description declares
    // ---- `bound N ...`; with no bound, behaviour is bit-identical). ----

    /// Exact-via-refinement: rewrite an over-bound source query against a
    /// non-paging bounded source into a union of selective sub-conditions
    /// (DNF disjuncts) that each fit under the bound and pass the
    /// capability check. Applied at planning time; counted in
    /// Stats::bounded.refinement_splits.
    bool bounded_refinement = true;
    /// After an answer comes back truncated (a bounded source withheld
    /// rows and no exact strategy recovered them), re-plan avoiding the
    /// truncated sub-queries and adopt the alternative iff it answers
    /// completely — planning around a bounded source when an unbounded
    /// alternate exists in the Choice space.
    bool replan_on_truncation = false;

    // ---- Async event-loop execution (off by default: false runs the
    // ---- existing pool path, bit-identical). ----

    /// Execute plans on the event-loop DAG scheduler instead of blocking
    /// pool threads: one loop thread drives every outstanding simulated
    /// source round trip as timer events (retries, backoff, hedge delays,
    /// paging loops included), so in-flight fan-out is no longer bounded by
    /// num_threads. The pool, when present, is repurposed for CPU-bound
    /// scan offload. The env var GENCOMPACT_ASYNC=1 forces this on — the
    /// CI leg that re-runs the whole mediator suite through the loop.
    bool async_executor = false;
    /// Per-source / global caps on concurrent source round trips (async
    /// path only; see InflightLimiter). Zeros = unlimited.
    InflightLimiterOptions inflight;
    /// Shed hopeless queries before planning when backlog x observed
    /// latency exceeds the deadline (async path only; see
    /// AdmissionController). drain_width defaults to inflight.global.
    AdmissionOptions admission;
    /// Wall-time budget for one query's execution: bounds limiter waits,
    /// sub-query retry chains, and backoff sleeps (no sleep is ever
    /// scheduled past it), feeds admission control, and propagates across
    /// both sides of a bind-join (the right side inherits what the left
    /// side did not consume). Zero = none.
    std::chrono::microseconds query_deadline{0};
    /// Query-count admission gate, checked before planning: at most
    /// `max_inflight_queries` queries execute at once, the next
    /// `admission_queue_limit` are tolerated as backlog (they contend at
    /// the in-flight limiter), and anything beyond is shed with
    /// kUnavailable. 0 = gate disabled.
    size_t max_inflight_queries = 0;
    size_t admission_queue_limit = 0;
  };

  explicit Mediator(Strategy default_strategy = Strategy::kGenCompact)
      : Mediator(DefaultOptions(default_strategy)) {}

  explicit Mediator(const Options& options)
      : options_(options),
        default_strategy_(options.default_strategy),
        plan_cache_(options.cache_capacity, options.cache_shards),
        check_memo_(options.check_memo_capacity > 0
                        ? std::make_unique<CheckMemo>(
                              options.check_memo_capacity,
                              options.check_memo_shards,
                              options.check_memo_verify_rate)
                        : nullptr),
        pool_(options.num_threads > 0
                  ? std::make_unique<ThreadPool>(options.num_threads)
                  : nullptr) {
    if (options_.clock == nullptr) options_.clock = Clock::Real();
    ApplyAsyncEnvOverride();
    if (options_.async_executor) {
      limiter_ =
          std::make_unique<InflightLimiter>(options_.inflight, options_.clock);
      if (options_.admission.drain_width == 0) {
        options_.admission.drain_width =
            options_.inflight.global > 0 ? options_.inflight.global : 1;
      }
      loop_ = std::make_unique<EventLoop>(options_.clock);
    }
    if (options_.async_executor || options_.max_inflight_queries > 0) {
      admission_ = std::make_unique<AdmissionController>(options_.admission);
    }
  }

  /// Registers a simulated Internet source (takes ownership of the table).
  Status RegisterSource(SourceDescription description,
                        std::unique_ptr<Table> table);

  /// Reloads the SSDL description of an already-registered source (same
  /// name, same schema; the table and registration id survive). Clears the
  /// plan cache, bumps the source's description epoch, and invalidates its
  /// cross-query Check memo entries, so no plan or Check result computed
  /// against the old capabilities outlives them. Like registration, call
  /// while no queries are in flight.
  Status ReloadSource(SourceDescription description);

  /// One bounded source that truncated its contribution to an answer: the
  /// "provably partial" marker of the result-bound model. rows_lower_bound
  /// is what DID arrive — the answer holds at least this many of the
  /// sub-query's true rows.
  struct TruncatedSource {
    std::string source;         ///< source that withheld rows
    std::string sub_query;      ///< rendering of the truncated SP(C, A, R)
    uint64_t bound = 0;         ///< the declared result bound
    uint64_t rows_lower_bound = 0;  ///< rows actually recovered
    std::string reason;         ///< why the loop stopped short
  };

  /// Completeness marker of a (possibly degraded) answer: when the
  /// fault-tolerance policy drops failed ∨-branches instead of failing the
  /// query, or a result-bounded source truncated a sub-query with no exact
  /// recovery, the answer is a subset of the true answer and lists exactly
  /// what it is missing. An answer is complete iff both lists are empty —
  /// there are NO silently-truncated answers.
  struct Completeness {
    bool complete = true;
    /// Short renderings of the dropped ∨-branches.
    std::vector<std::string> dropped_sub_queries;
    /// Bounded sources that hit their bound with rows remaining.
    std::vector<TruncatedSource> truncated_sources;
  };

  struct QueryResult {
    RowSet rows;
    PlanPtr plan;
    double estimated_cost = 0.0;
    ExecStats exec;           ///< true transfer statistics
    double true_cost = 0.0;   ///< Equation-1 cost with actual row counts
    Completeness completeness;
    /// True when the answer came from a recovery plan that routed around
    /// failed sub-queries (Options::replan_on_failure).
    bool replanned = false;
  };

  /// Runs a mini-SQL target query with the default strategy. Join queries
  /// (`SELECT ... FROM a JOIN b ON ...`) are dispatched to QueryJoin.
  Result<QueryResult> Query(const std::string& sql) {
    return Query(sql, default_strategy_);
  }
  Result<QueryResult> Query(const std::string& sql, Strategy strategy);

  /// Non-blocking query intake (requires Options::async_executor): admission
  /// control and planning run on the calling thread, execution on the event
  /// loop, and `done` fires on the loop thread with the answer — so one
  /// submitter thread keeps hundreds of queries in flight at once. Recovery
  /// re-planning is not attempted on this path (fall back to Query for
  /// that); join queries and non-async mediators execute synchronously
  /// before `done` returns.
  void QueryAsync(const std::string& sql,
                  std::function<void(Result<QueryResult>)> done);

  /// Two-source equi-join queries — the complex-query extension ([2]):
  /// every per-source building block is planned with GenCompact, and the
  /// right side may be evaluated as a capability-sensitive bind-join.
  /// QueryResult::plan is the left-side plan; exec/true_cost aggregate both
  /// sides.
  Result<QueryResult> QueryJoin(const std::string& sql,
                                JoinProcessor::Options options = {});

  /// N-source federated queries (a FROM chain of two or more JOINs):
  /// capability-sensitive pushdown per relation, DP join-order enumeration
  /// over the query graph, bind-join vs independent fetch per edge. Query()
  /// dispatches here when the chain names three or more sources; two-source
  /// joins keep going through QueryJoin, bit-identically. QueryResult::plan
  /// is the first relation's independent-fetch plan (null when the chosen
  /// tree reaches that relation only through a bind edge).
  Result<QueryResult> QueryFederated(const std::string& sql,
                                     FederationOptions options = {});

  /// Programmatic form: SP(condition, attrs, source).
  Result<QueryResult> QueryCondition(const std::string& source,
                                     const ConditionPtr& condition,
                                     const std::vector<std::string>& attrs,
                                     Strategy strategy);

  /// Plans without executing; returns the validated plan.
  Result<PlanPtr> Explain(const std::string& sql, Strategy strategy);

  /// Human-readable plan rendering for a query.
  Result<std::string> ExplainText(const std::string& sql, Strategy strategy);

  /// EXPLAIN ANALYZE: plans, executes, and renders the plan together with a
  /// per-source-query table of estimated vs actual result rows — the
  /// standard way to debug the cost model on a live query. (The source
  /// queries run once for the real execution and once for the per-query
  /// row counts.)
  Result<std::string> ExplainAnalyze(const std::string& sql, Strategy strategy);

  Catalog* catalog() { return &catalog_; }

  /// Plan-cache statistics (mediators see the same form queries over and
  /// over; repeated queries skip planning entirely).
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// The shared cross-query Check memo, or null when
  /// Options::check_memo_capacity is 0.
  const CheckMemo* check_memo() const { return check_memo_.get(); }

  /// One mediator-wide observability snapshot (/varz-style): every counter
  /// the layers below keep — condition-interner pool, Checker memo, plan
  /// cache, per-source query/fault/breaker counters, and the aggregated
  /// retry/degradation/replan totals — gathered in one consistent-enough
  /// read so load tests and benches can watch pool growth, memo efficacy,
  /// and fault recovery over time.
  struct Stats {
    ConditionInterner::Stats interner;

    struct {
      size_t hits = 0;
      size_t misses = 0;
      size_t refreshes = 0;
      double hit_rate = 0.0;
      size_t size = 0;
      size_t shards = 0;
      /// Lock acquisitions that found a shard mutex already held (summed).
      size_t contended = 0;
      /// Per-shard counters, index order — a single hot shard shows up
      /// here, not in the totals above.
      std::vector<PlanCache::ShardStats> per_shard;
    } plan_cache;

    /// The shared cross-query Check memo (zeros when not configured).
    struct CheckMemoStats {
      bool enabled = false;
      size_t hits = 0;
      size_t misses = 0;
      size_t insertions = 0;
      size_t evictions = 0;
      size_t invalidated = 0;        ///< dropped by description reloads
      size_t verified_hits = 0;      ///< hits re-checked by a fresh Earley run
      size_t verify_mismatches = 0;  ///< collisions / stale entries caught
      /// True once a verified mismatch latched the memo off for good.
      bool auto_disabled = false;
      size_t size = 0;
      size_t capacity = 0;
      size_t shards = 0;
      double hit_rate = 0.0;
    } check_memo;

    struct PerSource {
      std::string name;
      Source::Stats source;
      size_t check_calls = 0;      ///< Checker invocations (planning)
      size_t check_memo_hits = 0;  ///< answered from the ConditionId memo
      size_t check_l2_hits = 0;    ///< L1 misses answered by the shared memo
      /// Earley items created planning against this source — the per-source
      /// work measure behind check_calls (items only accrue on real parses,
      /// never on memo hits).
      size_t earley_items = 0;
      uint64_t description_epoch = 0;  ///< bumped by each description reload
      FaultInjector::Stats faults;          ///< zeros when no policy installed
      bool has_breaker = false;
      CircuitBreaker::State breaker_state = CircuitBreaker::State::kClosed;
      CircuitBreaker::Stats breaker;
      bool has_latency = false;  ///< latency tracking configured
      LatencyTracker::Snapshot latency;
      /// k1 cost-penalty multiplier in force (1 when healthy/disabled).
      double cost_penalty = 1.0;
      /// The hedge quantile currently in force for this source: the fixed
      /// policy quantile, or the straggler-rate-derived one when adaptive
      /// (0 when hedging is off or no digest exists).
      double hedge_quantile = 0.0;
    };
    std::vector<PerSource> sources;

    /// Async-executor gauges (zeros when Options::async_executor is off).
    struct Scheduler {
      bool enabled = false;
      size_t inflight_fetches = 0;       ///< source round trips on the wire now
      size_t peak_inflight = 0;
      size_t limiter_queue_depth = 0;    ///< fetches waiting for a permit now
      size_t peak_queue_depth = 0;
      uint64_t limiter_admitted = 0;     ///< permits granted, lifetime
      uint64_t limiter_deadline_failures = 0;  ///< waits that outlived deadlines
      uint64_t admission_rejections = 0; ///< queries shed before planning
      size_t active_queries = 0;         ///< past admission, not yet answered
      size_t timer_wheel_size = 0;       ///< timers armed right now
      uint64_t timers_fired = 0;
      uint64_t tasks_run = 0;            ///< loop continuations executed
    } scheduler;

    /// Aggregated over every execution this mediator ran.
    struct {
      uint64_t queries_ok = 0;
      uint64_t queries_failed = 0;
      uint64_t queries_partial = 0;    ///< answered, but degraded
      uint64_t queries_replanned = 0;  ///< recovered via avoid-set re-plan
      uint64_t queries_shed = 0;       ///< rejected up front (breaker open)
      uint64_t retries = 0;
      uint64_t breaker_rejections = 0;
      uint64_t deadlines_exceeded = 0;
      uint64_t dropped_branches = 0;
      uint64_t hedges_launched = 0;
      uint64_t hedges_won = 0;
      uint64_t join_failovers = 0;  ///< right-side alternates attempted
    } fault_tolerance;

    /// Result-bounded interface activity (zeros while no source declares a
    /// bound).
    struct {
      uint64_t pages_fetched = 0;      ///< bounded pages the loops drove
      uint64_t truncated_answers = 0;  ///< answers carrying a truncation marker
      uint64_t refinement_splits = 0;  ///< source queries split at plan time
    } bounded;

    /// N-source federation planning (zeros until a ≥3-source query runs).
    struct {
      uint64_t federated_queries = 0;
      uint64_t plans_enumerated = 0;  ///< (left, right, method) candidates costed
      uint64_t dp_subsets_expanded = 0;  ///< PlanTable entries materialized
      uint64_t bind_edges_chosen = 0;
      uint64_t independent_edges_chosen = 0;
      uint64_t greedy_fallbacks = 0;  ///< DP size threshold exceeded
      uint64_t replans = 0;  ///< alternate join orders adopted mid-query
    } join;

    /// When this snapshot was taken (the mediator's injected clock), so two
    /// snapshots diff into rates deterministically under a FakeClock.
    std::chrono::steady_clock::time_point captured_at{};

    /// Interval rates between two snapshots of the same mediator.
    struct Rates {
      double interval_seconds = 0.0;
      double qps = 0.0;           ///< completed queries (ok+failed+shed) / s
      double success_rate = 0.0;  ///< ok / completed
      double hedge_rate = 0.0;    ///< hedges launched / completed
      double shed_rate = 0.0;     ///< shed / (completed)
      double retry_rate = 0.0;    ///< retries / completed
      double cache_hit_rate = 0.0;  ///< plan-cache hits / lookups, interval
      /// Cross-query Check memo hits / lookups over the interval.
      double check_l2_hit_rate = 0.0;
      /// Admission-control rejections / completed queries over the interval.
      double admission_reject_rate = 0.0;
      std::string ToString() const;
    };
    /// Rates over (earlier, this]; `earlier` must be an older snapshot of
    /// the same mediator. Zero-interval or non-monotonic inputs yield zero
    /// rates rather than dividing by zero.
    Rates DiffSince(const Stats& earlier) const;

    /// Multi-line /varz-style rendering (stable keys, one per line).
    std::string ToString() const;
  };
  Stats StatsSnapshot() const;

  /// Enables/disables the semantics-preserving condition simplification
  /// pre-pass (on by default). Unsatisfiable conditions short-circuit to an
  /// empty result without contacting the source.
  void set_simplify_conditions(bool enabled) { simplify_conditions_ = enabled; }

 private:
  static Options DefaultOptions(Strategy strategy) {
    Options options;
    options.default_strategy = strategy;
    return options;
  }

  struct Prepared {
    CatalogEntry* entry = nullptr;
    ConditionPtr condition;
    AttributeSet attrs;
    bool unsatisfiable = false;
  };
  Result<Prepared> Prepare(const std::string& sql);
  Result<Prepared> PrepareParts(CatalogEntry* entry, ConditionPtr condition,
                                const std::vector<std::string>& attrs);
  Result<PlanPtr> PlanPrepared(const Prepared& prepared, Strategy strategy);
  Result<QueryResult> ExecutePrepared(const Prepared& prepared,
                                      Strategy strategy);

  /// One executor pass with this mediator's fault-tolerance options; folds
  /// the executor's counters into the mediator-wide aggregates. On failure,
  /// the keys of failed sub-queries are added to `failed_keys` (if given) —
  /// the avoid-set for a recovery re-plan. Truncated sub-queries (bounded
  /// sources that withheld rows) land in the result's completeness marker
  /// and, if given, in `truncated_keys` — the avoid-set for
  /// replan_on_truncation.
  Result<RowSet> RunPlan(const Prepared& prepared, const PlanNode& plan,
                         QueryResult* result, SubQueryAvoidSet* failed_keys,
                         SubQueryAvoidSet* truncated_keys = nullptr);

  /// Applies the GENCOMPACT_ASYNC=1 env override to options_ (called from
  /// the constructor, before any async machinery is built).
  void ApplyAsyncEnvOverride();

  Options options_;
  Strategy default_strategy_;
  Catalog catalog_;
  PlanCache plan_cache_;
  std::unique_ptr<CheckMemo> check_memo_;  ///< null when capacity is 0
  // Async-executor machinery (all null unless Options::async_executor; the
  // admission controller also exists when only the query-count gate is
  // configured). Declaration order is destruction order in reverse, and it
  // matters: the pool must drain first (in-flight scan offloads post back
  // to the loop), then the loop (its leftover tasks may release limiter
  // permits), then the limiter/admission gauges they touched.
  std::unique_ptr<InflightLimiter> limiter_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<EventLoop> loop_;
  std::unique_ptr<ThreadPool> pool_;
  bool simplify_conditions_ = true;

  // Mediator-lifetime fault-tolerance aggregates (executors are
  // per-execution and discarded; these carry their counters forward).
  std::atomic<uint64_t> queries_ok_{0};
  std::atomic<uint64_t> queries_failed_{0};
  std::atomic<uint64_t> queries_partial_{0};
  std::atomic<uint64_t> queries_replanned_{0};
  std::atomic<uint64_t> queries_shed_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> breaker_rejections_{0};
  std::atomic<uint64_t> deadlines_exceeded_{0};
  std::atomic<uint64_t> dropped_branches_{0};
  std::atomic<uint64_t> hedges_launched_{0};
  std::atomic<uint64_t> hedges_won_{0};
  std::atomic<uint64_t> join_failovers_{0};
  std::atomic<uint64_t> pages_fetched_{0};
  std::atomic<uint64_t> truncated_answers_{0};
  std::atomic<uint64_t> refinement_splits_{0};
  std::atomic<uint64_t> federated_queries_{0};
  std::atomic<uint64_t> fed_plans_enumerated_{0};
  std::atomic<uint64_t> fed_dp_subsets_{0};
  std::atomic<uint64_t> fed_bind_edges_{0};
  std::atomic<uint64_t> fed_independent_edges_{0};
  std::atomic<uint64_t> fed_greedy_fallbacks_{0};
  std::atomic<uint64_t> fed_replans_{0};
  /// Queries past admission control and not yet answered — what the
  /// query-count admission gate counts against its cap.
  std::atomic<size_t> active_queries_{0};
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_MEDIATOR_H_
