#ifndef GENCOMPACT_MEDIATOR_WRAPPER_H_
#define GENCOMPACT_MEDIATOR_WRAPPER_H_

#include <memory>
#include <string>

#include "exec/executor.h"
#include "planner/gen_compact.h"

namespace gencompact {

/// A generic-relational wrapper around one limited source (Section 2: "if
/// wrappers are to provide generic relational capabilities for Internet
/// sources, then they need to implement a scheme like the one we describe").
///
/// A Wrapper accepts ANY select-project query — arbitrary condition
/// expression, any projection — and answers it by:
///   1. simplifying the condition (unsatisfiable conditions answer with the
///      empty set without contacting the source);
///   2. planning with GenCompact against the source's SSDL description
///      (safe combination mode, so answers are exact);
///   3. executing the plan through the capability-enforcing source.
///
/// kNoFeasiblePlan is returned only when the source's capabilities are
/// genuinely insufficient (e.g. no download and no matching form).
class Wrapper {
 public:
  /// Takes ownership of nothing: `table` must outlive the wrapper.
  Wrapper(SourceDescription description, const Table* table,
          GenCompactOptions options = {});

  const Schema& schema() const { return handle_.schema(); }

  /// Batch width of the wrapper's data plane (0 = row reference path; > 0
  /// = vectorized scans + columnar wire transfers, see Mediator::Options).
  void set_batch_width(size_t width) {
    batch_width_ = width;
    source_.set_batch_width(width);
  }
  size_t batch_width() const { return batch_width_; }

  /// Answers SP(condition, attrs, R).
  Result<RowSet> Query(const ConditionPtr& condition, const AttributeSet& attrs);

  /// Text front end: condition text (ParseCondition grammar) + attribute
  /// names (empty = all attributes).
  Result<RowSet> Query(const std::string& condition_text,
                       const std::vector<std::string>& attr_names);

  struct Stats {
    size_t queries = 0;
    size_t answered = 0;
    size_t answered_without_source = 0;  ///< simplified to FALSE
    size_t infeasible = 0;
    size_t source_queries = 0;
    uint64_t rows_transferred = 0;
    uint64_t wire_bytes = 0;  ///< columnar transfer bytes (batch mode only)
  };
  const Stats& stats() const { return stats_; }

 private:
  SourceHandle handle_;
  Source source_;
  GenCompactOptions options_;
  size_t batch_width_ = 0;
  Stats stats_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_WRAPPER_H_
