#include "mediator/join.h"

#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "expr/canonical.h"
#include "expr/condition_eval.h"
#include "plan/plan_validator.h"
#include "planner/gen_compact.h"

namespace gencompact {

const char* JoinMethodName(JoinMethod method) {
  switch (method) {
    case JoinMethod::kIndependent:
      return "independent";
    case JoinMethod::kBind:
      return "bind-join";
  }
  return "?";
}

ConditionPtr BindBatchCondition(const ConditionPtr& cond,
                                const std::string& key_attr,
                                const std::vector<Value>& values) {
  std::vector<ConditionPtr> eqs;
  eqs.reserve(values.size());
  for (const Value& v : values) {
    eqs.push_back(ConditionNode::Atom(key_attr, CompareOp::kEq, v));
  }
  ConditionPtr in_list = ConditionNode::Or(std::move(eqs));
  if (cond->is_true()) return in_list;
  std::vector<ConditionPtr> conjuncts =
      cond->kind() == ConditionNode::Kind::kAnd
          ? cond->children()
          : std::vector<ConditionPtr>{cond};
  conjuncts.push_back(std::move(in_list));
  return ConditionNode::And(std::move(conjuncts));
}

namespace {

std::string Qualify(const std::string& source, const std::string& attr) {
  return source + "." + attr;
}

/// "src.attr" -> "attr" when the qualifier matches `source`.
std::optional<std::string> Unqualify(const std::string& name,
                                     const std::string& source) {
  if (name.size() > source.size() + 1 &&
      name.compare(0, source.size(), source) == 0 &&
      name[source.size()] == '.') {
    return name.substr(source.size() + 1);
  }
  return std::nullopt;
}

/// Rewrites every atom's attribute through `rename`; structure unchanged.
ConditionPtr RenameAttributes(
    const ConditionPtr& cond,
    const std::function<std::string(const std::string&)>& rename) {
  switch (cond->kind()) {
    case ConditionNode::Kind::kTrue:
      return cond;
    case ConditionNode::Kind::kAtom: {
      const AtomicCondition& atom = cond->atom();
      return ConditionNode::Atom(rename(atom.attribute), atom.op, atom.constant);
    }
    case ConditionNode::Kind::kAnd:
    case ConditionNode::Kind::kOr: {
      std::vector<ConditionPtr> children;
      children.reserve(cond->children().size());
      for (const ConditionPtr& child : cond->children()) {
        children.push_back(RenameAttributes(child, rename));
      }
      return ConditionNode::Connector(cond->kind(), std::move(children));
    }
  }
  return cond;
}

/// Which of the two sources a (qualified) condition references.
struct SourceRefs {
  bool left = false;
  bool right = false;
  bool unknown = false;
  std::string unknown_name;
};

void CollectRefs(const ConditionNode& cond, const std::string& left_source,
                 const Schema& left_schema, const std::string& right_source,
                 const Schema& right_schema, SourceRefs* refs) {
  if (cond.is_atom()) {
    const std::string& name = cond.atom().attribute;
    const std::optional<std::string> l = Unqualify(name, left_source);
    if (l.has_value() && left_schema.IndexOf(*l).has_value()) {
      refs->left = true;
      return;
    }
    const std::optional<std::string> r = Unqualify(name, right_source);
    if (r.has_value() && right_schema.IndexOf(*r).has_value()) {
      refs->right = true;
      return;
    }
    refs->unknown = true;
    refs->unknown_name = name;
    return;
  }
  for (const ConditionPtr& child : cond.children()) {
    CollectRefs(*child, left_source, left_schema, right_source, right_schema,
                refs);
  }
}

}  // namespace

Result<Schema> JoinProcessor::OutputSchema(const JoinQuery& query) const {
  const Schema& ls = left_->schema();
  const Schema& rs = right_->schema();
  if (ls.num_attributes() + rs.num_attributes() > 64) {
    return Status::InvalidArgument(
        "joined schema exceeds the 64-attribute limit");
  }
  std::vector<AttributeDef> attrs;
  for (const AttributeDef& a : ls.attributes()) {
    attrs.push_back({Qualify(query.left_source, a.name), a.type});
  }
  for (const AttributeDef& a : rs.attributes()) {
    attrs.push_back({Qualify(query.right_source, a.name), a.type});
  }
  return Schema(std::move(attrs));
}

Result<JoinProcessor::SplitCondition> JoinProcessor::Split(
    const JoinQuery& query) const {
  const Schema& left_schema = left_->schema();
  const Schema& right_schema = right_->schema();

  SplitCondition split;
  std::vector<ConditionPtr> left_conjuncts;
  std::vector<ConditionPtr> right_conjuncts;
  std::vector<ConditionPtr> residual_conjuncts;

  const ConditionPtr canonical = Canonicalize(query.condition != nullptr
                                                  ? query.condition
                                                  : ConditionNode::True());
  std::vector<ConditionPtr> conjuncts;
  if (canonical->is_true()) {
    // nothing to push
  } else if (canonical->kind() == ConditionNode::Kind::kAnd) {
    conjuncts = canonical->children();
  } else {
    conjuncts = {canonical};
  }

  for (const ConditionPtr& conjunct : conjuncts) {
    SourceRefs refs;
    CollectRefs(*conjunct, query.left_source, left_schema, query.right_source,
                right_schema, &refs);
    if (refs.unknown) {
      return Status::NotFound("join condition references unknown attribute '" +
                              refs.unknown_name +
                              "' (use source-qualified names)");
    }
    if (refs.left && !refs.right) {
      left_conjuncts.push_back(RenameAttributes(
          conjunct, [&](const std::string& name) {
            return *Unqualify(name, query.left_source);
          }));
    } else if (refs.right && !refs.left) {
      right_conjuncts.push_back(RenameAttributes(
          conjunct, [&](const std::string& name) {
            return *Unqualify(name, query.right_source);
          }));
    } else {
      residual_conjuncts.push_back(conjunct);
    }
  }

  split.left = left_conjuncts.empty() ? ConditionNode::True()
                                      : ConditionNode::And(std::move(left_conjuncts));
  split.right = right_conjuncts.empty()
                    ? ConditionNode::True()
                    : ConditionNode::And(std::move(right_conjuncts));
  split.residual = residual_conjuncts.empty()
                       ? ConditionNode::True()
                       : ConditionNode::And(std::move(residual_conjuncts));
  return split;
}

namespace {

struct SideNeeds {
  AttributeSet attrs;            // unqualified positions in the side schema
  std::vector<int> key_indices;  // join-key positions, in JoinKey order
};

/// Attributes a side must provide: its share of the SELECT list, of the
/// residual condition, and all its join keys.
Result<SideNeeds> ComputeNeeds(const JoinQuery& query, bool is_left,
                               const Schema& schema,
                               const ConditionPtr& residual) {
  const std::string& source = is_left ? query.left_source : query.right_source;
  SideNeeds needs;

  const auto add_qualified = [&](const std::string& name) -> Result<bool> {
    const std::optional<std::string> local = Unqualify(name, source);
    if (!local.has_value()) return false;
    GC_ASSIGN_OR_RETURN(const int index, schema.RequireIndex(*local));
    needs.attrs.Add(index);
    return true;
  };

  if (query.select.empty()) {
    needs.attrs = schema.AllAttributes();
  } else {
    for (const std::string& name : query.select) {
      GC_ASSIGN_OR_RETURN(const bool mine, add_qualified(name));
      (void)mine;  // the other side picks it up; unknown names error below
    }
  }
  // Residual attributes (qualified).
  if (residual != nullptr && !residual->is_true()) {
    std::vector<const ConditionNode*> stack = {residual.get()};
    while (!stack.empty()) {
      const ConditionNode* node = stack.back();
      stack.pop_back();
      if (node->is_atom()) {
        GC_ASSIGN_OR_RETURN(const bool mine,
                            add_qualified(node->atom().attribute));
        (void)mine;
      }
      for (const ConditionPtr& child : node->children()) {
        stack.push_back(child.get());
      }
    }
  }
  // Join keys.
  for (const JoinKey& key : query.keys) {
    const std::string& qualified = is_left ? key.left : key.right;
    const std::optional<std::string> local = Unqualify(qualified, source);
    if (!local.has_value()) {
      return Status::InvalidArgument("join key '" + qualified +
                                     "' is not qualified by source '" + source +
                                     "'");
    }
    GC_ASSIGN_OR_RETURN(const int index, schema.RequireIndex(*local));
    needs.attrs.Add(index);
    needs.key_indices.push_back(index);
  }
  return needs;
}

Result<PlanPtr> PlanSide(CatalogEntry* entry, const ConditionPtr& cond,
                         const AttributeSet& attrs) {
  GenCompactPlanner planner(entry->handle());
  GC_ASSIGN_OR_RETURN(PlanPtr plan, planner.Plan(cond, attrs));
  GC_RETURN_IF_ERROR(ValidatePlanFor(*plan, attrs, entry->handle()->checker()));
  return plan;
}

/// Folds one executor pass into the running right-side totals — failover can
/// run the right side more than once, and every attempt's work is real cost.
void AccumulateExecStats(ExecStats* into, const ExecStats& from) {
  into->source_queries += from.source_queries;
  into->rows_transferred += from.rows_transferred;
  into->retries += from.retries;
  into->failed_sub_queries += from.failed_sub_queries;
  into->breaker_rejections += from.breaker_rejections;
  into->deadlines_exceeded += from.deadlines_exceeded;
  into->dropped_branches += from.dropped_branches;
  into->hedges_launched += from.hedges_launched;
  into->hedges_won += from.hedges_won;
  into->hedges_cancelled += from.hedges_cancelled;
}

/// Runs the join's right side against `entry`. `right_plan` is the
/// pre-planned independent plan for the primary; pass nullptr for a failover
/// alternate — its capabilities may differ from the primary's, so the side
/// is re-planned here against the alternate's own description. (Bind-join
/// batches are always planned per entry anyway.) Executor counters are
/// accumulated into `stats->right`.
Result<RowSet> RunRightSide(CatalogEntry* entry, JoinMethod method,
                            PlanPtr right_plan, const ConditionPtr& right_cond,
                            const SideNeeds& right_needs,
                            const RowSet& left_rows, int left_key,
                            size_t bind_batch_size, ExecOptions exec_options,
                            JoinExecStats* stats) {
  const size_t batch_width = exec_options.batch_width;
  Executor exec(entry->source(), /*pool=*/nullptr, exec_options);
  Result<RowSet> rows = [&]() -> Result<RowSet> {
    if (method == JoinMethod::kIndependent) {
      if (right_plan == nullptr) {
        GC_ASSIGN_OR_RETURN(right_plan,
                            PlanSide(entry, right_cond, right_needs.attrs));
      }
      return exec.Execute(*right_plan);
    }
    // Bind-join: collect distinct left values of the first join key, then
    // one batched value-list query per chunk.
    const int left_slot = left_rows.layout().SlotOf(left_key);
    std::vector<Value> distinct;
    {
      std::unordered_set<Value, ValueHash> seen;
      for (const Row& row : left_rows.rows()) {
        const Value& v = row.value(static_cast<size_t>(left_slot));
        if (v.is_null()) continue;
        if (seen.insert(v).second) distinct.push_back(v);
      }
    }
    const std::string& key_attr =
        entry->schema().attribute(right_needs.key_indices[0]).name;
    RowSet acc(RowLayout(right_needs.attrs, entry->schema().num_attributes()));
    for (size_t start = 0; start < distinct.size(); start += bind_batch_size) {
      const size_t end = std::min(distinct.size(), start + bind_batch_size);
      const std::vector<Value> batch(distinct.begin() + start,
                                     distinct.begin() + end);
      const ConditionPtr batch_cond =
          BindBatchCondition(right_cond, key_attr, batch);
      GC_ASSIGN_OR_RETURN(PlanPtr batch_plan,
                          PlanSide(entry, batch_cond, right_needs.attrs));
      GC_ASSIGN_OR_RETURN(RowSet batch_rows, exec.Execute(*batch_plan));
      if (batch_width > 0) {
        // PR 6 data plane: fold each batch in place — rows move with their
        // cached hashes instead of being copied into a fresh union per
        // probe (which was quadratic in the accumulated size).
        acc.MergeFrom(std::move(batch_rows));
      } else {
        acc = RowSet::UnionOf(acc, batch_rows);
      }
      ++stats->bind_batches;
    }
    return acc;
  }();
  AccumulateExecStats(&stats->right, exec.stats());
  if (rows.ok()) {
    // Only a side that actually contributed rows can mark the answer
    // partial; failed attempts are discarded wholesale (and surface as an
    // error or a failover instead).
    for (TruncationRecord record : exec.truncation_records()) {
      stats->truncations.push_back(std::move(record));
    }
    for (std::string dropped : exec.dropped_sub_queries()) {
      stats->dropped_sub_queries.push_back(std::move(dropped));
    }
  }
  return rows;
}

}  // namespace

Result<JoinPlanOutcome> JoinProcessor::Plan(const JoinQuery& query) {
  if (query.keys.empty()) {
    return Status::InvalidArgument("join requires at least one key pair");
  }
  GC_ASSIGN_OR_RETURN(const SplitCondition split, Split(query));
  GC_ASSIGN_OR_RETURN(
      const SideNeeds left_needs,
      ComputeNeeds(query, /*is_left=*/true, left_->schema(), split.residual));
  GC_ASSIGN_OR_RETURN(
      const SideNeeds right_needs,
      ComputeNeeds(query, /*is_left=*/false, right_->schema(), split.residual));

  JoinPlanOutcome outcome;
  outcome.residual = split.residual;
  GC_ASSIGN_OR_RETURN(outcome.left_plan,
                      PlanSide(left_, split.left, left_needs.attrs));
  const double left_cost =
      left_->handle()->cost_model().PlanCost(*outcome.left_plan);

  // Option A: independent right plan.
  double independent_cost = -1;
  Result<PlanPtr> independent = PlanSide(right_, split.right, right_needs.attrs);
  if (independent.ok()) {
    independent_cost =
        right_->handle()->cost_model().PlanCost(**independent);
  }

  // Option B: bind-join on the first key. Feasibility is probed with
  // type-representative constants (grammars match constants by type).
  double bind_cost = -1;
  if (options_.enable_bind) {
    const std::string& key_attr =
        right_->schema().attribute(right_needs.key_indices[0]).name;
    const ValueType key_type =
        right_->schema().attribute(right_needs.key_indices[0]).type;
    std::vector<Value> probe_values;
    for (size_t i = 0; i < std::max<size_t>(options_.bind_batch_size, 1); ++i) {
      probe_values.push_back(key_type == ValueType::kString
                                 ? Value::String("probe" + std::to_string(i))
                                 : Value::Int(static_cast<int64_t>(i)));
    }
    const ConditionPtr probe =
        BindBatchCondition(split.right, key_attr, probe_values);
    if (right_->handle()->checker()->Supports(*probe, right_needs.attrs)) {
      // Estimated: one right query per batch of distinct left key values.
      const double left_keys = std::max(
          1.0, left_->handle()->cost_model().EstimateResultRows(
                   *split.left, [&] {
                     AttributeSet keys;
                     keys.Add(left_needs.key_indices[0]);
                     return keys;
                   }()));
      const size_t effective_batch = static_cast<size_t>(std::min<double>(
          static_cast<double>(options_.bind_batch_size),
          std::ceil(left_keys)));
      const double batches =
          std::ceil(left_keys / static_cast<double>(effective_batch));
      // Cost-estimate with a batch of the size actually expected, using
      // REAL sampled key values from the right source's statistics — the
      // fabricated feasibility-probe constants would estimate zero matches.
      std::vector<Value> cost_values;
      const int right_key = right_needs.key_indices[0];
      if (static_cast<size_t>(right_key) < right_->handle()->stats().num_attributes()) {
        for (const Value& v :
             right_->handle()->stats().attribute(right_key).sample_values) {
          if (cost_values.size() >= effective_batch) break;
          bool duplicate = false;
          for (const Value& existing : cost_values) {
            if (existing == v) {
              duplicate = true;
              break;
            }
          }
          if (!duplicate) cost_values.push_back(v);
        }
      }
      for (size_t i = cost_values.size(); i < effective_batch; ++i) {
        cost_values.push_back(probe_values[i]);
      }
      const ConditionPtr cost_probe =
          BindBatchCondition(split.right, key_attr, cost_values);
      const double per_batch_rows =
          right_->handle()->cost_model().EstimateResultRows(*cost_probe,
                                                            right_needs.attrs);
      bind_cost = batches * (right_->handle()->description().k1() +
                             right_->handle()->description().k2() *
                                 per_batch_rows);
    }
  }

  if (options_.force_method.has_value()) {
    outcome.method = *options_.force_method;
    if (outcome.method == JoinMethod::kIndependent) {
      if (!independent.ok()) return independent.status();
      outcome.right_plan = *independent;
      outcome.estimated_cost = left_cost + independent_cost;
    } else {
      if (bind_cost < 0) {
        return Status::NoFeasiblePlan(
            "bind-join forced but the right source does not support the "
            "bound value-list query shape");
      }
      outcome.estimated_cost = left_cost + bind_cost;
    }
    return outcome;
  }

  if (independent_cost < 0 && bind_cost < 0) {
    return Status::NoFeasiblePlan(
        "no feasible right-side strategy: the right source supports neither "
        "the pushed-down condition nor bound value lists");
  }
  if (bind_cost >= 0 && (independent_cost < 0 || bind_cost < independent_cost)) {
    outcome.method = JoinMethod::kBind;
    outcome.estimated_cost = left_cost + bind_cost;
  } else {
    outcome.method = JoinMethod::kIndependent;
    outcome.right_plan = *independent;
    outcome.estimated_cost = left_cost + independent_cost;
  }
  return outcome;
}

Result<RowSet> JoinProcessor::Execute(const JoinQuery& query) {
  stats_ = JoinExecStats();
  GC_ASSIGN_OR_RETURN(const JoinPlanOutcome outcome, Plan(query));
  GC_ASSIGN_OR_RETURN(const SplitCondition split, Split(query));
  GC_ASSIGN_OR_RETURN(
      const SideNeeds left_needs,
      ComputeNeeds(query, /*is_left=*/true, left_->schema(), split.residual));
  GC_ASSIGN_OR_RETURN(
      const SideNeeds right_needs,
      ComputeNeeds(query, /*is_left=*/false, right_->schema(), split.residual));

  // Deadline budget: the left side may spend at most the whole budget; the
  // right side inherits whatever the left leaves over.
  Clock* clock = options_.clock != nullptr ? options_.clock : Clock::Real();
  const std::chrono::microseconds deadline = options_.deadline;
  const std::chrono::steady_clock::time_point started = clock->Now();

  const auto cap_deadline = [](RetryPolicy retry,
                               std::chrono::microseconds budget) {
    if (budget.count() > 0 && (retry.sub_query_deadline.count() == 0 ||
                               budget < retry.sub_query_deadline)) {
      retry.sub_query_deadline = budget;
    }
    return retry;
  };

  // Left side.
  ExecOptions left_options;
  left_options.batch_width = options_.batch_width;
  left_options.retry = cap_deadline(options_.retry, deadline);
  left_options.clock = clock;
  if (deadline.count() > 0) left_options.deadline = started + deadline;
  Executor left_exec(left_->source(), /*pool=*/nullptr, left_options);
  GC_ASSIGN_OR_RETURN(const RowSet left_rows,
                      left_exec.Execute(*outcome.left_plan));
  stats_.left = left_exec.stats();
  for (TruncationRecord record : left_exec.truncation_records()) {
    stats_.truncations.push_back(std::move(record));
  }
  for (std::string dropped : left_exec.dropped_sub_queries()) {
    stats_.dropped_sub_queries.push_back(std::move(dropped));
  }

  // What the left consumed comes off the right side's budget; an exhausted
  // budget sheds the right side before it is planned — no source contact.
  std::chrono::microseconds remaining = deadline;
  if (deadline.count() > 0) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        clock->Now() - started);
    remaining = deadline - elapsed;
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded(
          "join deadline exhausted by the left side; the right side was not "
          "started");
    }
  }
  ExecOptions right_options;
  right_options.batch_width = options_.batch_width;
  right_options.retry = cap_deadline(options_.retry, remaining);
  right_options.clock = clock;
  if (deadline.count() > 0) right_options.deadline = started + deadline;

  // Right side: the primary entry first; on a *retryable* failure, each
  // schema-compatible alternate in turn (cross-source failover). Alternates
  // whose breaker is effectively open are skipped — they would only burn the
  // attempt. Non-retryable failures (infeasible plan, bad query) propagate
  // immediately: no replica can fix those.
  stats_.right_source_used = right_->name();
  Result<RowSet> right_result = RunRightSide(
      right_, outcome.method, outcome.right_plan, split.right, right_needs,
      left_rows, left_needs.key_indices[0], options_.bind_batch_size,
      right_options, &stats_);
  if (!right_result.ok() && IsRetryable(right_result.status().code())) {
    for (CatalogEntry* alternate : options_.right_alternates) {
      if (alternate == right_) continue;
      if (alternate->breaker() != nullptr &&
          alternate->breaker()->EffectiveState() ==
              CircuitBreaker::State::kOpen) {
        continue;
      }
      ++stats_.right_failovers;
      Result<RowSet> attempt = RunRightSide(
          alternate, outcome.method, /*right_plan=*/nullptr, split.right,
          right_needs, left_rows, left_needs.key_indices[0],
          options_.bind_batch_size, right_options, &stats_);
      if (attempt.ok()) {
        stats_.right_source_used = alternate->name();
        right_result = std::move(attempt);
        break;
      }
      // Alternate failed too (or can't support the shape): keep trying the
      // rest; the primary's error is what we report if all fail.
    }
  }
  if (!right_result.ok()) return right_result.status();
  const RowSet right_rows = std::move(right_result).value();

  // Joined schema: left needed attrs then right needed attrs, qualified.
  std::vector<AttributeDef> joined_attrs;
  for (int index : left_needs.attrs.Indices()) {
    joined_attrs.push_back({Qualify(query.left_source,
                                    left_->schema().attribute(index).name),
                            left_->schema().attribute(index).type});
  }
  for (int index : right_needs.attrs.Indices()) {
    joined_attrs.push_back({Qualify(query.right_source,
                                    right_->schema().attribute(index).name),
                            right_->schema().attribute(index).type});
  }
  const Schema joined_schema(joined_attrs);
  const RowLayout joined_layout(joined_schema.AllAttributes(),
                                joined_schema.num_attributes());

  // Output projection.
  AttributeSet select_attrs;
  if (query.select.empty()) {
    select_attrs = joined_schema.AllAttributes();
  } else {
    GC_ASSIGN_OR_RETURN(select_attrs, joined_schema.MakeSet(query.select));
  }
  const RowLayout out_layout(select_attrs, joined_schema.num_attributes());
  RowSet output(out_layout);

  const auto emit = [&](Row joined) -> Result<bool> {
    if (!outcome.residual->is_true()) {
      GC_ASSIGN_OR_RETURN(const bool keep,
                          EvalCondition(*outcome.residual, joined,
                                        joined_layout, joined_schema));
      if (!keep) return false;
    }
    ++stats_.joined_rows;
    output.Insert(joined_layout.Project(joined, out_layout));
    return true;
  };

  const auto key_slots = [](const RowLayout& layout,
                            const std::vector<int>& keys) {
    std::vector<size_t> slots;
    slots.reserve(keys.size());
    for (int key : keys) slots.push_back(static_cast<size_t>(layout.SlotOf(key)));
    return slots;
  };
  const std::vector<size_t> left_slots =
      key_slots(left_rows.layout(), left_needs.key_indices);
  const std::vector<size_t> right_slots =
      key_slots(right_rows.layout(), right_needs.key_indices);

  if (options_.batch_width > 0) {
    // Batch data plane through the join boundary: build and probe on folded
    // key-value hashes (no key Row is materialized), verify candidates by
    // direct slot comparison, and compose each joined row's hash from the
    // left row's cached hash plus the appended right values — the payloads
    // are never re-folded.
    const auto key_hash = [](const Row& row, const std::vector<size_t>& slots) {
      size_t h = Row::kEmptyHash;
      for (size_t slot : slots) h = Row::ExtendHash(h, &row.value(slot), 1);
      return h;
    };
    const auto keys_match = [&](const Row& l, const Row& r) {
      for (size_t i = 0; i < left_slots.size(); ++i) {
        if (!(l.value(left_slots[i]) == r.value(right_slots[i]))) return false;
      }
      return true;
    };
    std::unordered_map<size_t, std::vector<const Row*>> right_index;
    for (const Row& row : right_rows.rows()) {
      right_index[key_hash(row, right_slots)].push_back(&row);
    }
    for (const Row& left_row : left_rows.rows()) {
      const auto it = right_index.find(key_hash(left_row, left_slots));
      if (it == right_index.end()) continue;
      for (const Row* right_row : it->second) {
        if (!keys_match(left_row, *right_row)) continue;
        std::vector<Value> combined = left_row.values();
        combined.insert(combined.end(), right_row->values().begin(),
                        right_row->values().end());
        const size_t hash =
            Row::ExtendHash(left_row.Hash(), right_row->values());
        GC_RETURN_IF_ERROR(emit(Row(std::move(combined), hash)).status());
      }
    }
    return output;
  }

  // Row-at-a-time reference path (bit-identical to the original join).
  const auto key_tuple = [](const Row& row, const std::vector<size_t>& slots) {
    std::vector<Value> tuple;
    tuple.reserve(slots.size());
    for (size_t slot : slots) tuple.push_back(row.value(slot));
    return Row(std::move(tuple));
  };
  std::unordered_map<Row, std::vector<const Row*>, RowHash> right_index;
  for (const Row& row : right_rows.rows()) {
    right_index[key_tuple(row, right_slots)].push_back(&row);
  }
  for (const Row& left_row : left_rows.rows()) {
    const Row key = key_tuple(left_row, left_slots);
    const auto it = right_index.find(key);
    if (it == right_index.end()) continue;
    for (const Row* right_row : it->second) {
      std::vector<Value> combined = left_row.values();
      combined.insert(combined.end(), right_row->values().begin(),
                      right_row->values().end());
      GC_RETURN_IF_ERROR(emit(Row(std::move(combined))).status());
    }
  }
  return output;
}

}  // namespace gencompact
