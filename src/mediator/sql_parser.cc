#include "mediator/sql_parser.h"

#include <cctype>

#include "common/strings.h"
#include "expr/condition_parser.h"

namespace gencompact {

namespace {

// Case-insensitive keyword search at word boundaries, outside quotes.
size_t FindKeyword(std::string_view text, std::string_view keyword,
                   size_t from = 0) {
  const std::string lower = ToLower(text);
  const std::string needle = ToLower(keyword);
  size_t pos = from;
  bool in_quotes = false;
  for (size_t i = 0; i < lower.size(); ++i) {
    if (lower[i] == '"') in_quotes = !in_quotes;
    if (in_quotes || i < pos) continue;
    if (lower.compare(i, needle.size(), needle) != 0) continue;
    const bool left_ok =
        i == 0 || !std::isalnum(static_cast<unsigned char>(lower[i - 1]));
    const size_t end = i + needle.size();
    const bool right_ok =
        end >= lower.size() ||
        !std::isalnum(static_cast<unsigned char>(lower[end]));
    if (left_ok && right_ok) return i;
  }
  return std::string_view::npos;
}

// Splits an ON-clause body into "l = r" key pairs on the `and` keyword.
Result<std::vector<std::pair<std::string, std::string>>> ParseOnPairs(
    const std::string& on_body) {
  std::vector<std::string> terms;
  size_t start = 0;
  while (true) {
    const size_t and_pos = FindKeyword(on_body, "and", start);
    if (and_pos == std::string_view::npos) {
      terms.push_back(
          std::string(StripWhitespace(std::string_view(on_body).substr(start))));
      break;
    }
    terms.push_back(std::string(StripWhitespace(
        std::string_view(on_body).substr(start, and_pos - start))));
    start = and_pos + 3;
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const std::string& term : terms) {
    const std::vector<std::string> sides = Split(term, '=');
    if (sides.size() != 2) {
      return Status::InvalidArgument("ON clause term is not 'left = right': " +
                                     term);
    }
    pairs.emplace_back(std::string(StripWhitespace(sides[0])),
                       std::string(StripWhitespace(sides[1])));
  }
  if (pairs.empty()) {
    return Status::InvalidArgument("ON clause has no key pairs");
  }
  return pairs;
}

}  // namespace

Result<ParsedQuery> ParseSql(std::string_view sql) {
  const std::string_view trimmed = StripWhitespace(sql);
  const size_t select_pos = FindKeyword(trimmed, "select");
  if (select_pos != 0) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  const size_t from_pos = FindKeyword(trimmed, "from");
  if (from_pos == std::string_view::npos) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  const size_t where_pos = FindKeyword(trimmed, "where", from_pos);

  ParsedQuery query;

  // SELECT list.
  const std::string_view select_body =
      StripWhitespace(trimmed.substr(6, from_pos - 6));
  if (select_body.empty()) {
    return Status::InvalidArgument("empty SELECT list");
  }
  if (select_body != "*") {
    for (const std::string& item : Split(select_body, ',')) {
      const std::string_view name = StripWhitespace(item);
      if (name.empty()) {
        return Status::InvalidArgument("empty attribute in SELECT list");
      }
      query.select_list.emplace_back(name);
    }
  }

  // FROM source.
  const size_t from_end =
      where_pos == std::string_view::npos ? trimmed.size() : where_pos;
  const std::string_view source =
      StripWhitespace(trimmed.substr(from_pos + 4, from_end - from_pos - 4));
  if (source.empty()) {
    return Status::InvalidArgument("empty FROM clause");
  }
  query.source = std::string(source);

  // WHERE condition.
  if (where_pos == std::string_view::npos) {
    query.condition = ConditionNode::True();
  } else {
    GC_ASSIGN_OR_RETURN(query.condition,
                        ParseCondition(trimmed.substr(where_pos + 5)));
  }
  return query;
}

bool IsJoinQuery(std::string_view sql) {
  const size_t from_pos = FindKeyword(sql, "from");
  if (from_pos == std::string_view::npos) return false;
  return FindKeyword(sql, "join", from_pos) != std::string_view::npos;
}

Result<ParsedJoinQuery> ParseJoinSql(std::string_view sql) {
  const std::string_view trimmed = StripWhitespace(sql);
  if (FindKeyword(trimmed, "select") != 0) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  const size_t from_pos = FindKeyword(trimmed, "from");
  const size_t join_pos = FindKeyword(trimmed, "join", from_pos);
  const size_t on_pos = FindKeyword(trimmed, "on", join_pos);
  if (from_pos == std::string_view::npos || join_pos == std::string_view::npos) {
    return Status::InvalidArgument("join query needs FROM ... JOIN ...");
  }
  if (on_pos == std::string_view::npos) {
    return Status::InvalidArgument("join query needs an ON clause");
  }
  const size_t where_pos = FindKeyword(trimmed, "where", on_pos);

  ParsedJoinQuery query;

  const std::string_view select_body =
      StripWhitespace(trimmed.substr(6, from_pos - 6));
  if (select_body.empty()) {
    return Status::InvalidArgument("empty SELECT list");
  }
  if (select_body != "*") {
    for (const std::string& item : Split(select_body, ',')) {
      const std::string_view name = StripWhitespace(item);
      if (name.empty()) {
        return Status::InvalidArgument("empty attribute in SELECT list");
      }
      query.select_list.emplace_back(name);
    }
  }

  query.left_source = std::string(
      StripWhitespace(trimmed.substr(from_pos + 4, join_pos - from_pos - 4)));
  query.right_source = std::string(
      StripWhitespace(trimmed.substr(join_pos + 4, on_pos - join_pos - 4)));
  if (query.left_source.empty() || query.right_source.empty()) {
    return Status::InvalidArgument("join query has empty source names");
  }

  // ON clause: parse as a condition and decompose `l = r` conjuncts. The
  // condition grammar sees the right-hand qualified name as an identifier,
  // so parse key pairs textually: "qual = qual" split on "and".
  const size_t on_end =
      where_pos == std::string_view::npos ? trimmed.size() : where_pos;
  const std::string on_body(
      StripWhitespace(trimmed.substr(on_pos + 2, on_end - on_pos - 2)));
  // Split on the `and` keyword at top level (ON clauses have no quotes).
  std::string lowered = ToLower(on_body);
  size_t start = 0;
  std::vector<std::string> pairs;
  while (true) {
    const size_t and_pos = FindKeyword(on_body, "and", start);
    if (and_pos == std::string_view::npos) {
      pairs.push_back(std::string(StripWhitespace(
          std::string_view(on_body).substr(start))));
      break;
    }
    pairs.push_back(std::string(StripWhitespace(
        std::string_view(on_body).substr(start, and_pos - start))));
    start = and_pos + 3;
  }
  (void)lowered;
  for (const std::string& pair : pairs) {
    const std::vector<std::string> sides = Split(pair, '=');
    if (sides.size() != 2) {
      return Status::InvalidArgument("ON clause term is not 'left = right': " +
                                     pair);
    }
    query.keys.emplace_back(std::string(StripWhitespace(sides[0])),
                            std::string(StripWhitespace(sides[1])));
  }
  if (query.keys.empty()) {
    return Status::InvalidArgument("ON clause has no key pairs");
  }

  if (where_pos == std::string_view::npos) {
    query.condition = ConditionNode::True();
  } else {
    GC_ASSIGN_OR_RETURN(query.condition,
                        ParseCondition(trimmed.substr(where_pos + 5)));
  }
  return query;
}

Result<ParsedFederatedQuery> ParseFederatedSql(std::string_view sql) {
  const std::string_view trimmed = StripWhitespace(sql);
  if (FindKeyword(trimmed, "select") != 0) {
    return Status::InvalidArgument("query must start with SELECT");
  }
  const size_t from_pos = FindKeyword(trimmed, "from");
  if (from_pos == std::string_view::npos) {
    return Status::InvalidArgument("query has no FROM clause");
  }
  const size_t where_pos = FindKeyword(trimmed, "where", from_pos);
  const size_t from_end =
      where_pos == std::string_view::npos ? trimmed.size() : where_pos;

  ParsedFederatedQuery query;

  const std::string_view select_body =
      StripWhitespace(trimmed.substr(6, from_pos - 6));
  if (select_body.empty()) {
    return Status::InvalidArgument("empty SELECT list");
  }
  if (select_body != "*") {
    for (const std::string& item : Split(select_body, ',')) {
      const std::string_view name = StripWhitespace(item);
      if (name.empty()) {
        return Status::InvalidArgument("empty attribute in SELECT list");
      }
      query.select_list.emplace_back(name);
    }
  }

  // FROM s0 JOIN s1 ON ... JOIN s2 ON ...: walk the JOIN chain. Each JOIN
  // names one more source; each ON body runs until the next JOIN (or the
  // end of the FROM clause).
  const size_t first_join = FindKeyword(trimmed, "join", from_pos);
  if (first_join == std::string_view::npos || first_join >= from_end) {
    return Status::InvalidArgument("federated query needs FROM ... JOIN ...");
  }
  query.sources.emplace_back(StripWhitespace(
      trimmed.substr(from_pos + 4, first_join - from_pos - 4)));
  if (query.sources.back().empty()) {
    return Status::InvalidArgument("federated query has an empty source name");
  }

  size_t join_pos = first_join;
  while (join_pos != std::string_view::npos && join_pos < from_end) {
    const size_t on_pos = FindKeyword(trimmed, "on", join_pos);
    if (on_pos == std::string_view::npos || on_pos >= from_end) {
      return Status::InvalidArgument("every JOIN needs an ON clause");
    }
    query.sources.emplace_back(
        StripWhitespace(trimmed.substr(join_pos + 4, on_pos - join_pos - 4)));
    if (query.sources.back().empty()) {
      return Status::InvalidArgument(
          "federated query has an empty source name");
    }
    size_t next_join = FindKeyword(trimmed, "join", on_pos);
    const size_t on_end = next_join == std::string_view::npos ||
                                  next_join >= from_end
                              ? from_end
                              : next_join;
    const std::string on_body(
        StripWhitespace(trimmed.substr(on_pos + 2, on_end - on_pos - 2)));
    GC_ASSIGN_OR_RETURN(const auto pairs, ParseOnPairs(on_body));
    query.keys.insert(query.keys.end(), pairs.begin(), pairs.end());
    join_pos = next_join != std::string_view::npos && next_join < from_end
                   ? next_join
                   : std::string_view::npos;
  }

  for (size_t i = 0; i < query.sources.size(); ++i) {
    for (size_t j = i + 1; j < query.sources.size(); ++j) {
      if (query.sources[i] == query.sources[j]) {
        return Status::InvalidArgument("source '" + query.sources[i] +
                                       "' appears twice in the FROM clause "
                                       "(self-joins are not supported)");
      }
    }
  }

  if (where_pos == std::string_view::npos) {
    query.condition = ConditionNode::True();
  } else {
    GC_ASSIGN_OR_RETURN(query.condition,
                        ParseCondition(trimmed.substr(where_pos + 5)));
  }
  return query;
}

}  // namespace gencompact
