#include "mediator/mediator.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "expr/simplify.h"
#include "plan/bounded.h"
#include "plan/plan_printer.h"

namespace gencompact {

namespace {

/// Increments a gauge for the enclosing scope — the active-query count the
/// AdmitQuery gate reads must drop on every return path, success or error.
class GaugeGuard {
 public:
  explicit GaugeGuard(std::atomic<size_t>* gauge) : gauge_(gauge) {
    gauge_->fetch_add(1, std::memory_order_relaxed);
  }
  ~GaugeGuard() { gauge_->fetch_sub(1, std::memory_order_relaxed); }
  GaugeGuard(const GaugeGuard&) = delete;
  GaugeGuard& operator=(const GaugeGuard&) = delete;

 private:
  std::atomic<size_t>* gauge_;
};

}  // namespace

void Mediator::ApplyAsyncEnvOverride() {
  // GENCOMPACT_ASYNC=1 forces the event-loop executor on — the CI lever that
  // re-runs the whole mediator/differential suite against the async path
  // without touching any test's Options.
  const char* env = std::getenv("GENCOMPACT_ASYNC");
  if (env != nullptr && env[0] == '1') options_.async_executor = true;
}

Status Mediator::RegisterSource(SourceDescription description,
                                std::unique_ptr<Table> table) {
  plan_cache_.Clear();  // a new source invalidates nothing, but keep simple
  const std::string name = description.source_name();
  GC_RETURN_IF_ERROR(
      catalog_.Register(std::move(description), std::move(table)));
  // Async mediators always track latency: the admission controller's
  // per-trip estimate and the adaptive hedge quantile both read it.
  const bool wants_latency = options_.hedge.enabled || options_.track_latency ||
                             options_.async_executor ||
                             (options_.breaker_aware_costs &&
                              options_.cost_penalty.slow_multiplier > 1.0);
  if (options_.enable_circuit_breaker || wants_latency ||
      options_.breaker_aware_costs || check_memo_ != nullptr ||
      options_.batch_width > 0) {
    GC_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Find(name));
    if (options_.batch_width > 0) {
      entry->set_batch_width(options_.batch_width);
    }
    if (options_.enable_circuit_breaker) {
      entry->EnableCircuitBreaker(options_.breaker, options_.clock);
    }
    if (wants_latency) entry->EnableLatencyTracking();
    if (options_.breaker_aware_costs) {
      entry->EnableCostPenalty(options_.cost_penalty);
    }
    if (check_memo_ != nullptr) entry->EnableCheckMemo(check_memo_.get());
  }
  return Status::OK();
}

Status Mediator::ReloadSource(SourceDescription description) {
  // Cached plans were validated against the old capabilities; none may
  // survive the reload. (The catalog bumps the description epoch, which
  // orphans the source's cross-query Check memo entries the same way.)
  plan_cache_.Clear();
  GC_ASSIGN_OR_RETURN(CatalogEntry * entry,
                      catalog_.Reload(std::move(description)));
  (void)entry;
  return Status::OK();
}

Result<Mediator::Prepared> Mediator::PrepareParts(
    CatalogEntry* entry, ConditionPtr condition,
    const std::vector<std::string>& attrs) {
  Prepared prepared;
  prepared.entry = entry;
  prepared.condition = std::move(condition);
  if (attrs.empty()) {
    prepared.attrs = entry->schema().AllAttributes();
  } else {
    GC_ASSIGN_OR_RETURN(prepared.attrs, entry->schema().MakeSet(attrs));
  }
  if (simplify_conditions_) {
    ConditionPtr simplified = SimplifyCondition(prepared.condition);
    if (simplified == nullptr) {
      prepared.unsatisfiable = true;
    } else {
      prepared.condition = std::move(simplified);
    }
  }
  return prepared;
}

Result<Mediator::Prepared> Mediator::Prepare(const std::string& sql) {
  GC_ASSIGN_OR_RETURN(const ParsedQuery parsed, ParseSql(sql));
  GC_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Find(parsed.source));
  return PrepareParts(entry, parsed.condition, parsed.select_list);
}

Result<PlanPtr> Mediator::PlanPrepared(const Prepared& prepared,
                                       Strategy strategy) {
  // Breaker-aware planning: refresh the source's k1 penalty multiplier so
  // the costs the planner is about to compare reflect health right now. A
  // penalized source (multiplier > 1) bypasses the plan cache in BOTH
  // directions — a cached healthy plan must not short-circuit the penalty,
  // and a penalty-shaped plan must never be served once the source heals.
  const bool cacheable = !options_.breaker_aware_costs ||
                         prepared.entry->RefreshCostPenalty() <= 1.0;
  const PlanCacheKey cache_key =
      PlanCache::MakeKey(prepared.entry->source_id(), strategy,
                         *prepared.condition, prepared.attrs);
  if (cacheable) {
    if (const std::optional<PlanPtr> cached = plan_cache_.Lookup(cache_key)) {
      return *cached;
    }
  }
  // No per-source planning lock: the Checker memoizes behind its own
  // shared-lock cache (keyed by interned ConditionId) and serializes only
  // its Earley recognizer on memo misses, so concurrent cache-miss planning
  // against one source proceeds in parallel. Two clients racing on the very
  // same key plan twice in the worst case; Insert treats the second result
  // as a refresh of an identical plan.
  const std::unique_ptr<PlannerStrategy> planner =
      MakePlanner(strategy, prepared.entry->handle());
  GC_ASSIGN_OR_RETURN(PlanPtr plan,
                      planner->Plan(prepared.condition, prepared.attrs));
  // Exact-via-refinement against a result-bounded, non-paging interface:
  // split an over-bound source query into a union of selective DNF pieces
  // that each fit under the bound. Deterministic, so the refined plan is
  // what gets validated and cached.
  const ResultBound& result_bound =
      prepared.entry->handle()->description().result_bound();
  if (options_.bounded_refinement && result_bound.bounded()) {
    BoundedRefinement refined = RefineBoundedPlan(
        plan, result_bound, prepared.entry->handle()->cost_model(),
        prepared.entry->handle()->checker());
    if (refined.splits > 0) {
      plan = std::move(refined.plan);
      refinement_splits_.fetch_add(refined.splits, std::memory_order_relaxed);
    }
  }
  // Feasibility guarantee: validate capability-aware strategies' plans
  // before execution. (The naive baseline intentionally emits plans the
  // source may reject; its failures surface at execution time.)
  if (strategy != Strategy::kNaive) {
    GC_RETURN_IF_ERROR(ValidatePlanFor(*plan, prepared.attrs,
                                       prepared.entry->handle()->checker()));
  }
  // The pinned condition keeps this entry's key re-internable: as long as
  // the plan is cached, the same query text hash-conses back to the same
  // ConditionId and hits.
  if (cacheable) plan_cache_.Insert(cache_key, plan, prepared.condition);
  return plan;
}

Result<RowSet> Mediator::RunPlan(const Prepared& prepared,
                                 const PlanNode& plan, QueryResult* result,
                                 SubQueryAvoidSet* failed_keys,
                                 SubQueryAvoidSet* truncated_keys) {
  ExecOptions exec_options;
  exec_options.retry = options_.retry;
  exec_options.breaker = prepared.entry->breaker();
  exec_options.clock = options_.clock;
  exec_options.degrade_unions = options_.partial_results;
  exec_options.partial_pages = options_.partial_results;
  exec_options.latency = prepared.entry->latency_tracker();
  exec_options.hedge = options_.hedge;
  exec_options.batch_width = options_.batch_width;
  if (options_.query_deadline.count() > 0) {
    // The whole-query wall budget: fail-fast before attempts and never park
    // a retry sleep past it — on both executors.
    exec_options.deadline = options_.clock->Now() + options_.query_deadline;
    if (exec_options.retry.sub_query_deadline.count() == 0 ||
        options_.query_deadline < exec_options.retry.sub_query_deadline) {
      exec_options.retry.sub_query_deadline = options_.query_deadline;
    }
  }

  Result<RowSet> rows = Status::Internal("plan not executed");
  ExecStats stats;
  std::vector<std::string> dropped;
  std::vector<SubQueryKey> exec_failed_keys;
  std::vector<TruncationRecord> truncations;
  if (loop_ != nullptr) {
    // Async path: the loop drives every round trip; the query deadline caps
    // each sub-query's retry chain and bounds limiter waits.
    AsyncExecOptions async_options;
    async_options.exec = exec_options;
    async_options.limiter = limiter_.get();
    async_options.scan_pool = pool_.get();
    async_options.source_id = prepared.entry->source_id();
    AsyncScheduler scheduler(prepared.entry->source(), loop_.get(),
                             async_options);
    rows = scheduler.Execute(plan);
    stats = scheduler.stats();
    dropped = scheduler.dropped_sub_queries();
    exec_failed_keys = scheduler.failed_sub_query_keys();
    truncations = scheduler.truncation_records();
  } else {
    Executor executor(prepared.entry->source(), pool_.get(), exec_options);
    rows = executor.Execute(plan);
    stats = executor.stats();
    dropped = executor.dropped_sub_queries();
    exec_failed_keys = executor.failed_sub_query_keys();
    truncations = executor.truncation_records();
  }
  retries_.fetch_add(stats.retries, std::memory_order_relaxed);
  breaker_rejections_.fetch_add(stats.breaker_rejections,
                                std::memory_order_relaxed);
  deadlines_exceeded_.fetch_add(stats.deadlines_exceeded,
                                std::memory_order_relaxed);
  dropped_branches_.fetch_add(stats.dropped_branches,
                              std::memory_order_relaxed);
  hedges_launched_.fetch_add(stats.hedges_launched, std::memory_order_relaxed);
  hedges_won_.fetch_add(stats.hedges_won, std::memory_order_relaxed);
  pages_fetched_.fetch_add(stats.pages_fetched, std::memory_order_relaxed);

  result->exec = stats;
  if (rows.ok()) {
    if (!dropped.empty()) {
      result->completeness.complete = false;
      result->completeness.dropped_sub_queries = std::move(dropped);
    }
    // Bounded sources that withheld rows: every truncation the executor saw
    // becomes an explicit marker — no answer is silently short.
    for (const TruncationRecord& record : truncations) {
      result->completeness.complete = false;
      TruncatedSource truncated;
      truncated.source = record.source;
      truncated.sub_query = record.sub_query;
      truncated.bound = record.bound;
      truncated.rows_lower_bound = record.rows_lower_bound;
      truncated.reason = record.reason;
      result->completeness.truncated_sources.push_back(std::move(truncated));
      if (truncated_keys != nullptr) truncated_keys->insert(record.key);
    }
  } else if (failed_keys != nullptr) {
    // The avoid-set for a potential re-plan around what just failed.
    for (const SubQueryKey& key : exec_failed_keys) {
      failed_keys->insert(key);
    }
  }
  return rows;
}

Result<Mediator::QueryResult> Mediator::ExecutePrepared(
    const Prepared& prepared, Strategy strategy) {
  QueryResult result;
  if (prepared.unsatisfiable) {
    // Proven empty during simplification: no plan, no source contact.
    result.rows = RowSet(RowLayout(
        prepared.attrs, prepared.entry->schema().num_attributes()));
    return result;
  }
  // Admission control, before any planning work: first the hard cap on
  // queries concurrently inside the mediator, then the backlog gate — shed
  // when the fetches already queued at the limiter, drained at the observed
  // per-trip latency, cannot finish inside this query's deadline.
  if (admission_ != nullptr) {
    Status admit = admission_->AdmitQuery(
        active_queries_.load(std::memory_order_relaxed),
        options_.max_inflight_queries, options_.admission_queue_limit);
    if (admit.ok() && limiter_ != nullptr) {
      std::chrono::microseconds est{0};
      const LatencyTracker* latency = prepared.entry->latency_tracker();
      if (latency != nullptr) {
        est = latency->Quantile(admission_->options().latency_quantile);
      }
      admit = admission_->Admit(limiter_->pending(), est,
                                options_.query_deadline);
    }
    if (!admit.ok()) {
      queries_shed_.fetch_add(1, std::memory_order_relaxed);
      return admit;
    }
  }
  const GaugeGuard active(&active_queries_);
  // Load shedding: the only source that can answer this query is
  // open-circuit, so every sub-query would be breaker-rejected anyway.
  // Fail fast before planning or executing anything. EffectiveState (not
  // state()) so a breaker whose open window has expired is NOT shed — the
  // next real query is the half-open probe that lets the source heal.
  if (options_.load_shedding && prepared.entry->breaker() != nullptr &&
      prepared.entry->breaker()->EffectiveState() ==
          CircuitBreaker::State::kOpen) {
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("query shed: source '" +
                               prepared.entry->name() +
                               "' circuit breaker is open");
  }
  GC_ASSIGN_OR_RETURN(PlanPtr plan, PlanPrepared(prepared, strategy));

  SubQueryAvoidSet failed_keys;
  SubQueryAvoidSet truncated_keys;
  Result<RowSet> rows =
      RunPlan(prepared, *plan, &result, &failed_keys, &truncated_keys);

  if (rows.ok() && options_.replan_on_truncation && !truncated_keys.empty()) {
    // The answer arrived, but a bounded source withheld rows. If the plan
    // space can route around the truncated sub-queries (an unbounded
    // alternate covers the same slice), the complete answer beats the
    // marked-partial one. The recovery plan is NOT cached, and it is only
    // adopted when it really is complete — otherwise the original partial
    // answer (with its markers) stands.
    const std::unique_ptr<PlannerStrategy> planner =
        MakePlanner(strategy, prepared.entry->handle());
    const Result<PlanPtr> alternative = planner->PlanAvoiding(
        prepared.condition, prepared.attrs, truncated_keys);
    if (alternative.ok()) {
      QueryResult retry_result;
      SubQueryAvoidSet retry_truncated;
      Result<RowSet> retry_rows = RunPlan(prepared, **alternative,
                                          &retry_result, nullptr,
                                          &retry_truncated);
      if (retry_rows.ok() && retry_result.completeness.complete) {
        rows = std::move(retry_rows);
        result = std::move(retry_result);
        plan = *alternative;
        result.replanned = true;
        queries_replanned_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (!rows.ok() && options_.replan_on_failure &&
      IsRetryable(rows.status().code()) && !failed_keys.empty()) {
    // Recovery: ask the planner for the cheapest feasible plan that routes
    // around every sub-query that just exhausted its retries. The recovery
    // plan is intentionally NOT cached — it is the workaround, not the plan
    // this query should run once the source heals.
    const std::unique_ptr<PlannerStrategy> planner =
        MakePlanner(strategy, prepared.entry->handle());
    const Result<PlanPtr> alternative = planner->PlanAvoiding(
        prepared.condition, prepared.attrs, failed_keys);
    if (alternative.ok()) {
      rows = RunPlan(prepared, **alternative, &result, nullptr);
      if (rows.ok()) {
        plan = *alternative;
        result.replanned = true;
        queries_replanned_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  if (!rows.ok()) {
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return rows.status();
  }
  queries_ok_.fetch_add(1, std::memory_order_relaxed);
  if (!result.completeness.complete) {
    queries_partial_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!result.completeness.truncated_sources.empty()) {
    truncated_answers_.fetch_add(1, std::memory_order_relaxed);
  }

  result.rows = std::move(rows).value();
  result.estimated_cost = prepared.entry->handle()->cost_model().PlanCost(*plan);
  result.plan = std::move(plan);
  const SourceDescription& description = prepared.entry->handle()->description();
  result.true_cost = result.exec.TrueCost(description.k1(), description.k2());
  return result;
}

Result<Mediator::QueryResult> Mediator::Query(const std::string& sql,
                                              Strategy strategy) {
  if (IsJoinQuery(sql)) {
    // Two-source joins keep the existing processor (bit-identical plans and
    // answers); three or more sources go through the federation planner.
    GC_ASSIGN_OR_RETURN(const ParsedFederatedQuery parsed,
                        ParseFederatedSql(sql));
    if (parsed.sources.size() > 2) return QueryFederated(sql);
    return QueryJoin(sql);
  }
  GC_ASSIGN_OR_RETURN(const Prepared prepared, Prepare(sql));
  return ExecutePrepared(prepared, strategy);
}

void Mediator::QueryAsync(const std::string& sql,
                          std::function<void(Result<QueryResult>)> done) {
  if (loop_ == nullptr || IsJoinQuery(sql)) {
    // No loop to hand off to (or a join, which is driven synchronously by
    // the bind-join processor): answer inline.
    done(Query(sql));
    return;
  }
  Result<Prepared> prepared_or = Prepare(sql);
  if (!prepared_or.ok()) {
    done(prepared_or.status());
    return;
  }
  const Prepared prepared = std::move(prepared_or).value();
  if (prepared.unsatisfiable) {
    QueryResult result;
    result.rows = RowSet(RowLayout(
        prepared.attrs, prepared.entry->schema().num_attributes()));
    done(std::move(result));
    return;
  }
  // Same pre-planning gates as ExecutePrepared: the in-flight query cap and
  // the backlog-x-latency admission gate first, then breaker-open shedding.
  if (admission_ != nullptr) {
    Status admit = admission_->AdmitQuery(
        active_queries_.load(std::memory_order_relaxed),
        options_.max_inflight_queries, options_.admission_queue_limit);
    if (admit.ok() && limiter_ != nullptr) {
      std::chrono::microseconds est{0};
      const LatencyTracker* latency = prepared.entry->latency_tracker();
      if (latency != nullptr) {
        est = latency->Quantile(admission_->options().latency_quantile);
      }
      admit = admission_->Admit(limiter_->pending(), est,
                                options_.query_deadline);
    }
    if (!admit.ok()) {
      queries_shed_.fetch_add(1, std::memory_order_relaxed);
      done(admit);
      return;
    }
  }
  if (options_.load_shedding && prepared.entry->breaker() != nullptr &&
      prepared.entry->breaker()->EffectiveState() ==
          CircuitBreaker::State::kOpen) {
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
    done(Status::Unavailable("query shed: source '" + prepared.entry->name() +
                             "' circuit breaker is open"));
    return;
  }
  Result<PlanPtr> plan_or = PlanPrepared(prepared, default_strategy_);
  if (!plan_or.ok()) {
    done(plan_or.status());
    return;
  }
  PlanPtr plan = std::move(plan_or).value();

  ExecOptions exec_options;
  exec_options.retry = options_.retry;
  exec_options.breaker = prepared.entry->breaker();
  exec_options.clock = options_.clock;
  exec_options.degrade_unions = options_.partial_results;
  exec_options.partial_pages = options_.partial_results;
  exec_options.latency = prepared.entry->latency_tracker();
  exec_options.hedge = options_.hedge;
  exec_options.batch_width = options_.batch_width;
  if (options_.query_deadline.count() > 0) {
    exec_options.deadline = options_.clock->Now() + options_.query_deadline;
    if (exec_options.retry.sub_query_deadline.count() == 0 ||
        options_.query_deadline < exec_options.retry.sub_query_deadline) {
      exec_options.retry.sub_query_deadline = options_.query_deadline;
    }
  }
  AsyncExecOptions async_options;
  async_options.exec = exec_options;
  async_options.limiter = limiter_.get();
  async_options.scan_pool = pool_.get();
  async_options.source_id = prepared.entry->source_id();
  auto scheduler = std::make_shared<AsyncScheduler>(
      prepared.entry->source(), loop_.get(), async_options);
  AsyncScheduler* raw = scheduler.get();
  CatalogEntry* entry = prepared.entry;
  active_queries_.fetch_add(1, std::memory_order_relaxed);
  // The callback owns the scheduler; it fires on the loop thread. No
  // recovery re-plan on this path — a failed answer is reported as-is.
  raw->ExecuteAsync(
      plan, [this, scheduler = std::move(scheduler), plan, entry,
             done = std::move(done)](Result<RowSet> rows) mutable {
        active_queries_.fetch_sub(1, std::memory_order_relaxed);
        const ExecStats stats = scheduler->stats();
        retries_.fetch_add(stats.retries, std::memory_order_relaxed);
        breaker_rejections_.fetch_add(stats.breaker_rejections,
                                      std::memory_order_relaxed);
        deadlines_exceeded_.fetch_add(stats.deadlines_exceeded,
                                      std::memory_order_relaxed);
        dropped_branches_.fetch_add(stats.dropped_branches,
                                    std::memory_order_relaxed);
        hedges_launched_.fetch_add(stats.hedges_launched,
                                   std::memory_order_relaxed);
        hedges_won_.fetch_add(stats.hedges_won, std::memory_order_relaxed);
        pages_fetched_.fetch_add(stats.pages_fetched,
                                 std::memory_order_relaxed);
        if (!rows.ok()) {
          queries_failed_.fetch_add(1, std::memory_order_relaxed);
          done(rows.status());
          return;
        }
        QueryResult result;
        result.exec = stats;
        std::vector<std::string> dropped = scheduler->dropped_sub_queries();
        if (!dropped.empty()) {
          result.completeness.complete = false;
          result.completeness.dropped_sub_queries = std::move(dropped);
        }
        for (const TruncationRecord& record :
             scheduler->truncation_records()) {
          result.completeness.complete = false;
          result.completeness.truncated_sources.push_back(
              {record.source, record.sub_query, record.bound,
               record.rows_lower_bound, record.reason});
        }
        queries_ok_.fetch_add(1, std::memory_order_relaxed);
        if (!result.completeness.complete) {
          queries_partial_.fetch_add(1, std::memory_order_relaxed);
        }
        if (!result.completeness.truncated_sources.empty()) {
          truncated_answers_.fetch_add(1, std::memory_order_relaxed);
        }
        result.rows = std::move(rows).value();
        result.estimated_cost = entry->handle()->cost_model().PlanCost(*plan);
        result.plan = std::move(plan);
        const SourceDescription& description = entry->handle()->description();
        result.true_cost =
            result.exec.TrueCost(description.k1(), description.k2());
        done(std::move(result));
      });
}

Result<Mediator::QueryResult> Mediator::QueryJoin(
    const std::string& sql, JoinProcessor::Options options) {
  GC_ASSIGN_OR_RETURN(const ParsedJoinQuery parsed, ParseJoinSql(sql));
  GC_ASSIGN_OR_RETURN(CatalogEntry * left, catalog_.Find(parsed.left_source));
  GC_ASSIGN_OR_RETURN(CatalogEntry * right, catalog_.Find(parsed.right_source));

  JoinQuery join;
  join.left_source = parsed.left_source;
  join.right_source = parsed.right_source;
  for (const auto& [l, r] : parsed.keys) join.keys.push_back({l, r});
  join.condition = parsed.condition;
  join.select = parsed.select_list;

  // Cross-source failover: let the join's non-driving side fall over to
  // any registered replica exporting the same schema.
  if (options_.join_failover && options.right_alternates.empty()) {
    options.right_alternates = catalog_.SchemaCompatibleAlternates(*right);
  }
  if (options.batch_width == 0) options.batch_width = options_.batch_width;
  // Deadline propagation: the mediator's query deadline (and clock) become
  // the join's whole-query budget unless the caller set their own.
  if (options.clock == nullptr) options.clock = options_.clock;
  if (options.deadline.count() == 0) {
    options.deadline = options_.query_deadline;
  }
  if (!options.retry.enabled()) options.retry = options_.retry;

  JoinProcessor processor(left, right, options);
  GC_ASSIGN_OR_RETURN(const JoinPlanOutcome outcome, processor.Plan(join));
  GC_ASSIGN_OR_RETURN(RowSet rows, processor.Execute(join));

  QueryResult result;
  result.rows = std::move(rows);
  result.plan = outcome.left_plan;
  result.estimated_cost = outcome.estimated_cost;
  const JoinExecStats& stats = processor.stats();
  join_failovers_.fetch_add(stats.right_failovers, std::memory_order_relaxed);
  result.exec.source_queries =
      stats.left.source_queries + stats.right.source_queries;
  result.exec.rows_transferred =
      stats.left.rows_transferred + stats.right.rows_transferred;
  result.exec.retries = stats.left.retries + stats.right.retries;
  result.true_cost =
      stats.left.TrueCost(left->handle()->description().k1(),
                          left->handle()->description().k2()) +
      stats.right.TrueCost(right->handle()->description().k1(),
                           right->handle()->description().k2());

  // Completeness composes through the join exactly as it does for single
  // sources and federated trees: a truncated or degraded side makes the
  // joined answer partial, never silently short.
  result.completeness.dropped_sub_queries = stats.dropped_sub_queries;
  for (const TruncationRecord& record : stats.truncations) {
    result.completeness.truncated_sources.push_back(
        {record.source, record.sub_query, record.bound,
         record.rows_lower_bound, record.reason});
  }
  result.completeness.complete =
      result.completeness.dropped_sub_queries.empty() &&
      result.completeness.truncated_sources.empty();
  if (!result.completeness.complete) {
    queries_partial_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!result.completeness.truncated_sources.empty()) {
    truncated_answers_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Result<Mediator::QueryResult> Mediator::QueryFederated(
    const std::string& sql, FederationOptions options) {
  GC_ASSIGN_OR_RETURN(const ParsedFederatedQuery parsed, ParseFederatedSql(sql));

  FederatedQuery query;
  query.sources = parsed.sources;
  for (const auto& [l, r] : parsed.keys) query.keys.push_back({l, r});
  query.condition = parsed.condition;
  query.select = parsed.select_list;

  std::vector<CatalogEntry*> entries;
  entries.reserve(parsed.sources.size());
  for (const std::string& name : parsed.sources) {
    GC_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Find(name));
    // Leaf costs the enumerator compares must reflect health right now.
    if (options_.breaker_aware_costs) entry->RefreshCostPenalty();
    entries.push_back(entry);
  }

  options.exec.retry = options_.retry;
  options.exec.clock = options_.clock;
  options.exec.degrade_unions = options_.partial_results;
  options.exec.partial_pages = options_.partial_results;
  options.exec.hedge = options_.hedge;
  options.exec.batch_width = options_.batch_width;
  if (options.max_replans == 0 && options_.replan_on_failure) {
    options.max_replans = 1;
  }
  options.pool = pool_.get();

  FederationProcessor processor(std::move(entries), options);
  Result<RowSet> rows = processor.Execute(query);
  const FederationExecStats& stats = processor.stats();

  // Fault-tolerance counters fold whether or not the query answered: a
  // failing federated query still burned retries and breaker rejections,
  // and the snapshot must show them.
  retries_.fetch_add(stats.exec.retries, std::memory_order_relaxed);
  breaker_rejections_.fetch_add(stats.exec.breaker_rejections,
                                std::memory_order_relaxed);
  deadlines_exceeded_.fetch_add(stats.exec.deadlines_exceeded,
                                std::memory_order_relaxed);
  if (!rows.ok()) return rows.status();

  federated_queries_.fetch_add(1, std::memory_order_relaxed);
  fed_plans_enumerated_.fetch_add(stats.plans_enumerated,
                                  std::memory_order_relaxed);
  fed_dp_subsets_.fetch_add(stats.dp_subsets, std::memory_order_relaxed);
  fed_bind_edges_.fetch_add(stats.bind_edges, std::memory_order_relaxed);
  fed_independent_edges_.fetch_add(stats.independent_edges,
                                   std::memory_order_relaxed);
  if (stats.used_greedy) {
    fed_greedy_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  fed_replans_.fetch_add(stats.replans, std::memory_order_relaxed);
  dropped_branches_.fetch_add(stats.exec.dropped_branches,
                              std::memory_order_relaxed);
  hedges_launched_.fetch_add(stats.exec.hedges_launched,
                             std::memory_order_relaxed);
  hedges_won_.fetch_add(stats.exec.hedges_won, std::memory_order_relaxed);
  pages_fetched_.fetch_add(stats.exec.pages_fetched,
                           std::memory_order_relaxed);
  if (stats.replans > 0) {
    queries_replanned_.fetch_add(1, std::memory_order_relaxed);
  }

  QueryResult result;
  result.rows = std::move(rows).value();
  result.exec = stats.exec;
  result.true_cost = stats.true_cost;
  result.replanned = stats.replans > 0;
  result.completeness.dropped_sub_queries = stats.dropped_sub_queries;
  for (const TruncationRecord& record : stats.truncations) {
    result.completeness.truncated_sources.push_back(
        {record.source, record.sub_query, record.bound,
         record.rows_lower_bound, record.reason});
  }
  result.completeness.complete =
      result.completeness.dropped_sub_queries.empty() &&
      result.completeness.truncated_sources.empty();
  if (!result.completeness.complete) {
    queries_partial_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!result.completeness.truncated_sources.empty()) {
    truncated_answers_.fetch_add(1, std::memory_order_relaxed);
  }

  // A fresh Plan() pass (Execute() does not expose the outcome it ran) for
  // the estimate and the representative plan; deterministic, so it matches
  // what Execute() chose on its first round.
  Result<FederationPlanOutcome> outcome = processor.Plan(query);
  if (outcome.ok()) {
    result.estimated_cost = outcome->estimated_cost;
    for (const PlanPtr& leaf : outcome->leaf_plans) {
      if (leaf != nullptr) {
        result.plan = leaf;
        break;
      }
    }
  }
  return result;
}

Result<Mediator::QueryResult> Mediator::QueryCondition(
    const std::string& source, const ConditionPtr& condition,
    const std::vector<std::string>& attrs, Strategy strategy) {
  GC_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Find(source));
  GC_ASSIGN_OR_RETURN(const Prepared prepared,
                      PrepareParts(entry, condition, attrs));
  return ExecutePrepared(prepared, strategy);
}

Result<PlanPtr> Mediator::Explain(const std::string& sql, Strategy strategy) {
  GC_ASSIGN_OR_RETURN(const Prepared prepared, Prepare(sql));
  if (prepared.unsatisfiable) {
    return Status::InvalidArgument(
        "condition is unsatisfiable; the mediator answers it with the empty "
        "set without a plan");
  }
  return PlanPrepared(prepared, strategy);
}

Result<std::string> Mediator::ExplainAnalyze(const std::string& sql,
                                             Strategy strategy) {
  GC_ASSIGN_OR_RETURN(const Prepared prepared, Prepare(sql));
  if (prepared.unsatisfiable) {
    return std::string(
        "EmptyResult (condition simplifies to FALSE; 0 rows, no source "
        "contact)\n");
  }
  GC_ASSIGN_OR_RETURN(const PlanPtr plan, PlanPrepared(prepared, strategy));

  Executor executor(prepared.entry->source());
  GC_ASSIGN_OR_RETURN(const RowSet rows, executor.Execute(*plan));

  const CostModel& model = prepared.entry->handle()->cost_model();
  std::string out = PrintPlan(*plan, prepared.entry->schema(), &model);
  out += "\nsource queries (estimated vs actual result rows):\n";
  std::vector<const PlanNode*> queries;
  plan->CollectSourceQueries(&queries);
  double true_cost = 0;
  const SourceDescription& description = prepared.entry->handle()->description();
  for (const PlanNode* query : queries) {
    const double estimated =
        model.EstimateResultRows(*query->condition(), query->attrs());
    GC_ASSIGN_OR_RETURN(
        const RowSet actual,
        prepared.entry->source()->Execute(*query->condition(), query->attrs()));
    true_cost += description.k1() +
                 description.k2() * static_cast<double>(actual.size());
    char line[512];
    std::snprintf(line, sizeof(line), "  est=%-10.1f actual=%-8zu  SP(%s)\n",
                  estimated, actual.size(),
                  query->condition()->ToString().c_str());
    out += line;
  }
  char summary[256];
  std::snprintf(summary, sizeof(summary),
                "result: %zu rows; estimated cost %.1f, true cost %.1f\n",
                rows.size(), model.PlanCost(*plan), true_cost);
  out += summary;
  return out;
}

Mediator::Stats Mediator::StatsSnapshot() const {
  Stats stats;
  stats.interner = ConditionInterner::Global().stats();

  stats.plan_cache.hits = plan_cache_.hits();
  stats.plan_cache.misses = plan_cache_.misses();
  stats.plan_cache.refreshes = plan_cache_.refreshes();
  stats.plan_cache.hit_rate = plan_cache_.hit_rate();
  stats.plan_cache.size = plan_cache_.size();
  stats.plan_cache.shards = plan_cache_.num_shards();
  stats.plan_cache.contended = plan_cache_.contended();
  stats.plan_cache.per_shard = plan_cache_.PerShardStats();

  if (check_memo_ != nullptr) {
    const CheckMemo::Stats memo = check_memo_->stats();
    stats.check_memo.enabled = true;
    stats.check_memo.hits = memo.hits;
    stats.check_memo.misses = memo.misses;
    stats.check_memo.insertions = memo.insertions;
    stats.check_memo.evictions = memo.evictions;
    stats.check_memo.invalidated = memo.invalidated;
    stats.check_memo.verified_hits = memo.verified_hits;
    stats.check_memo.verify_mismatches = memo.verify_mismatches;
    stats.check_memo.auto_disabled = memo.auto_disabled;
    stats.check_memo.size = memo.size;
    stats.check_memo.capacity = memo.capacity;
    stats.check_memo.shards = memo.shards;
    stats.check_memo.hit_rate = memo.hit_rate;
  }

  catalog_.ForEach([this, &stats](CatalogEntry* entry) {
    Stats::PerSource per;
    per.name = entry->name();
    per.source = entry->source()->stats();
    const Checker* checker = entry->handle()->checker();
    per.check_calls = checker->num_checks();
    per.check_memo_hits = checker->num_cache_hits();
    per.check_l2_hits = checker->num_shared_hits();
    per.earley_items = checker->total_earley_items();
    per.description_epoch = entry->description_epoch();
    if (const FaultInjector* injector = entry->source()->fault_injector()) {
      per.faults = injector->stats();
    }
    if (const CircuitBreaker* breaker = entry->breaker()) {
      per.has_breaker = true;
      per.breaker_state = breaker->state();
      per.breaker = breaker->stats();
    }
    if (const LatencyTracker* latency = entry->latency_tracker()) {
      per.has_latency = true;
      per.latency = latency->snapshot();
      if (options_.hedge.enabled) {
        per.hedge_quantile = EffectiveHedgeQuantile(options_.hedge, *latency);
      }
    }
    per.cost_penalty =
        entry->cost_penalty_enabled() ? entry->cost_penalty_multiplier() : 1.0;
    stats.sources.push_back(std::move(per));
  });

  stats.fault_tolerance.queries_ok =
      queries_ok_.load(std::memory_order_relaxed);
  stats.fault_tolerance.queries_failed =
      queries_failed_.load(std::memory_order_relaxed);
  stats.fault_tolerance.queries_partial =
      queries_partial_.load(std::memory_order_relaxed);
  stats.fault_tolerance.queries_replanned =
      queries_replanned_.load(std::memory_order_relaxed);
  stats.fault_tolerance.retries = retries_.load(std::memory_order_relaxed);
  stats.fault_tolerance.breaker_rejections =
      breaker_rejections_.load(std::memory_order_relaxed);
  stats.fault_tolerance.deadlines_exceeded =
      deadlines_exceeded_.load(std::memory_order_relaxed);
  stats.fault_tolerance.dropped_branches =
      dropped_branches_.load(std::memory_order_relaxed);
  stats.fault_tolerance.queries_shed =
      queries_shed_.load(std::memory_order_relaxed);
  stats.fault_tolerance.hedges_launched =
      hedges_launched_.load(std::memory_order_relaxed);
  stats.fault_tolerance.hedges_won =
      hedges_won_.load(std::memory_order_relaxed);
  stats.fault_tolerance.join_failovers =
      join_failovers_.load(std::memory_order_relaxed);
  if (limiter_ != nullptr) {
    stats.scheduler.enabled = true;
    stats.scheduler.inflight_fetches = limiter_->inflight();
    stats.scheduler.peak_inflight = limiter_->peak_inflight();
    stats.scheduler.limiter_queue_depth = limiter_->queue_depth();
    stats.scheduler.peak_queue_depth = limiter_->peak_queue_depth();
    stats.scheduler.limiter_admitted = limiter_->admitted();
    stats.scheduler.limiter_deadline_failures = limiter_->deadline_failures();
  }
  if (admission_ != nullptr) {
    stats.scheduler.admission_rejections = admission_->rejections();
  }
  stats.scheduler.active_queries =
      active_queries_.load(std::memory_order_relaxed);
  if (loop_ != nullptr) {
    const EventLoop::Stats loop_stats = loop_->stats();
    stats.scheduler.timer_wheel_size = loop_stats.timer_wheel_size;
    stats.scheduler.timers_fired = loop_stats.timers_fired;
    stats.scheduler.tasks_run = loop_stats.tasks_run;
  }
  stats.bounded.pages_fetched =
      pages_fetched_.load(std::memory_order_relaxed);
  stats.bounded.truncated_answers =
      truncated_answers_.load(std::memory_order_relaxed);
  stats.bounded.refinement_splits =
      refinement_splits_.load(std::memory_order_relaxed);
  stats.join.federated_queries =
      federated_queries_.load(std::memory_order_relaxed);
  stats.join.plans_enumerated =
      fed_plans_enumerated_.load(std::memory_order_relaxed);
  stats.join.dp_subsets_expanded =
      fed_dp_subsets_.load(std::memory_order_relaxed);
  stats.join.bind_edges_chosen =
      fed_bind_edges_.load(std::memory_order_relaxed);
  stats.join.independent_edges_chosen =
      fed_independent_edges_.load(std::memory_order_relaxed);
  stats.join.greedy_fallbacks =
      fed_greedy_fallbacks_.load(std::memory_order_relaxed);
  stats.join.replans = fed_replans_.load(std::memory_order_relaxed);
  stats.captured_at = options_.clock->Now();
  return stats;
}

Mediator::Stats::Rates Mediator::Stats::DiffSince(const Stats& earlier) const {
  Rates rates;
  const double seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          captured_at - earlier.captured_at)
          .count();
  if (seconds <= 0.0) return rates;  // zero/backwards interval: all-zero rates
  rates.interval_seconds = seconds;

  const auto delta = [](uint64_t now, uint64_t then) -> double {
    return now >= then ? static_cast<double>(now - then) : 0.0;
  };
  const double ok = delta(fault_tolerance.queries_ok,
                          earlier.fault_tolerance.queries_ok);
  const double failed = delta(fault_tolerance.queries_failed,
                              earlier.fault_tolerance.queries_failed);
  const double shed = delta(fault_tolerance.queries_shed,
                            earlier.fault_tolerance.queries_shed);
  const double completed = ok + failed + shed;
  rates.qps = completed / seconds;
  if (completed > 0.0) {
    rates.success_rate = ok / completed;
    rates.shed_rate = shed / completed;
    rates.hedge_rate = delta(fault_tolerance.hedges_launched,
                             earlier.fault_tolerance.hedges_launched) /
                       completed;
    rates.retry_rate =
        delta(fault_tolerance.retries, earlier.fault_tolerance.retries) /
        completed;
    rates.admission_reject_rate =
        delta(scheduler.admission_rejections,
              earlier.scheduler.admission_rejections) /
        completed;
  }
  const double hits =
      delta(plan_cache.hits, earlier.plan_cache.hits);
  const double lookups =
      hits + delta(plan_cache.misses, earlier.plan_cache.misses);
  if (lookups > 0.0) rates.cache_hit_rate = hits / lookups;
  const double l2_hits =
      delta(check_memo.hits, earlier.check_memo.hits);
  const double l2_lookups =
      l2_hits + delta(check_memo.misses, earlier.check_memo.misses);
  if (l2_lookups > 0.0) rates.check_l2_hit_rate = l2_hits / l2_lookups;
  return rates;
}

std::string Mediator::Stats::Rates::ToString() const {
  char line[256];
  std::string out;
  const auto append = [&out, &line](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  append("rates.interval_seconds   %.3f\n", interval_seconds);
  append("rates.qps                %.1f\n", qps);
  append("rates.success_rate       %.4f\n", success_rate);
  append("rates.hedge_rate         %.4f\n", hedge_rate);
  append("rates.shed_rate          %.4f\n", shed_rate);
  append("rates.retry_rate         %.4f\n", retry_rate);
  append("rates.admission_rejects  %.4f\n", admission_reject_rate);
  append("rates.cache_hit_rate     %.4f\n", cache_hit_rate);
  append("rates.check_l2_hit_rate  %.4f\n", check_l2_hit_rate);
  return out;
}

std::string Mediator::Stats::ToString() const {
  char line[256];
  std::string out;
  const auto append = [&out, &line](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    out += line;
  };
  append("interner.live_nodes      %zu\n", interner.live_nodes);
  append("interner.hits            %zu\n", interner.hits);
  append("interner.misses          %zu\n", interner.misses);
  append("plan_cache.hits          %zu\n", plan_cache.hits);
  append("plan_cache.misses        %zu\n", plan_cache.misses);
  append("plan_cache.refreshes     %zu\n", plan_cache.refreshes);
  append("plan_cache.hit_rate      %.4f\n", plan_cache.hit_rate);
  append("plan_cache.size          %zu\n", plan_cache.size);
  append("plan_cache.shards        %zu\n", plan_cache.shards);
  append("plan_cache.contended     %zu\n", plan_cache.contended);
  if (check_memo.enabled) {
    append("check_memo.hits          %zu\n", check_memo.hits);
    append("check_memo.misses        %zu\n", check_memo.misses);
    append("check_memo.hit_rate      %.4f\n", check_memo.hit_rate);
    append("check_memo.insertions    %zu\n", check_memo.insertions);
    append("check_memo.evictions     %zu\n", check_memo.evictions);
    append("check_memo.invalidated   %zu\n", check_memo.invalidated);
    append("check_memo.verified      %zu\n", check_memo.verified_hits);
    append("check_memo.mismatches    %zu\n", check_memo.verify_mismatches);
    if (check_memo.auto_disabled) {
      append("check_memo.auto_disabled 1\n");
    }
    append("check_memo.size          %zu\n", check_memo.size);
    append("check_memo.capacity      %zu\n", check_memo.capacity);
    append("check_memo.shards        %zu\n", check_memo.shards);
  }
  append("queries.ok               %llu\n",
         (unsigned long long)fault_tolerance.queries_ok);
  append("queries.failed           %llu\n",
         (unsigned long long)fault_tolerance.queries_failed);
  append("queries.partial          %llu\n",
         (unsigned long long)fault_tolerance.queries_partial);
  append("queries.replanned        %llu\n",
         (unsigned long long)fault_tolerance.queries_replanned);
  append("retries.total            %llu\n",
         (unsigned long long)fault_tolerance.retries);
  append("breaker.rejections       %llu\n",
         (unsigned long long)fault_tolerance.breaker_rejections);
  append("deadlines.exceeded       %llu\n",
         (unsigned long long)fault_tolerance.deadlines_exceeded);
  append("branches.dropped         %llu\n",
         (unsigned long long)fault_tolerance.dropped_branches);
  append("queries.shed             %llu\n",
         (unsigned long long)fault_tolerance.queries_shed);
  append("hedges.launched          %llu\n",
         (unsigned long long)fault_tolerance.hedges_launched);
  append("hedges.won               %llu\n",
         (unsigned long long)fault_tolerance.hedges_won);
  append("join.failovers           %llu\n",
         (unsigned long long)fault_tolerance.join_failovers);
  if (scheduler.enabled) {
    append("scheduler.inflight       %zu (peak %zu)\n",
           scheduler.inflight_fetches, scheduler.peak_inflight);
    append("scheduler.queue_depth    %zu (peak %zu)\n",
           scheduler.limiter_queue_depth, scheduler.peak_queue_depth);
    append("scheduler.admitted       %llu\n",
           (unsigned long long)scheduler.limiter_admitted);
    append("scheduler.queue_timeouts %llu\n",
           (unsigned long long)scheduler.limiter_deadline_failures);
    append("scheduler.adm_rejected   %llu\n",
           (unsigned long long)scheduler.admission_rejections);
    append("scheduler.active_queries %zu\n", scheduler.active_queries);
    append("scheduler.timer_wheel    %zu\n", scheduler.timer_wheel_size);
    append("scheduler.timers_fired   %llu\n",
           (unsigned long long)scheduler.timers_fired);
    append("scheduler.tasks_run      %llu\n",
           (unsigned long long)scheduler.tasks_run);
  }
  if (bounded.pages_fetched > 0 || bounded.truncated_answers > 0 ||
      bounded.refinement_splits > 0) {
    append("pages.fetched            %llu\n",
           (unsigned long long)bounded.pages_fetched);
    append("answers.truncated        %llu\n",
           (unsigned long long)bounded.truncated_answers);
    append("refinement.splits        %llu\n",
           (unsigned long long)bounded.refinement_splits);
  }
  if (join.federated_queries > 0) {
    append("join.federated_queries   %llu\n",
           (unsigned long long)join.federated_queries);
    append("join.plans_enumerated    %llu\n",
           (unsigned long long)join.plans_enumerated);
    append("join.dp_subsets          %llu\n",
           (unsigned long long)join.dp_subsets_expanded);
    append("join.bind_edges          %llu\n",
           (unsigned long long)join.bind_edges_chosen);
    append("join.independent_edges   %llu\n",
           (unsigned long long)join.independent_edges_chosen);
    append("join.greedy_fallbacks    %llu\n",
           (unsigned long long)join.greedy_fallbacks);
    append("join.replans             %llu\n",
           (unsigned long long)join.replans);
  }
  for (const PerSource& s : sources) {
    const char* prefix = s.name.c_str();
    append("source[%s].received      %zu\n", prefix, s.source.queries_received);
    append("source[%s].answered      %zu\n", prefix, s.source.queries_answered);
    append("source[%s].rejected      %zu\n", prefix, s.source.queries_rejected);
    append("source[%s].unavailable   %zu\n", prefix,
           s.source.queries_unavailable);
    append("source[%s].rows          %llu\n", prefix,
           (unsigned long long)s.source.rows_returned);
    if (s.source.wire_bytes > 0) {
      append("source[%s].wire_bytes    %llu\n", prefix,
             (unsigned long long)s.source.wire_bytes);
    }
    if (s.source.pages_served > 0) {
      append("source[%s].pages         %llu\n", prefix,
             (unsigned long long)s.source.pages_served);
      append("source[%s].truncated     %llu\n", prefix,
             (unsigned long long)s.source.truncated_responses);
    }
    append("source[%s].check_calls   %zu\n", prefix, s.check_calls);
    append("source[%s].check_hits    %zu\n", prefix, s.check_memo_hits);
    append("source[%s].check_l2_hits %zu\n", prefix, s.check_l2_hits);
    append("source[%s].earley_items  %zu\n", prefix, s.earley_items);
    if (s.description_epoch > 0) {
      append("source[%s].desc_epoch    %llu\n", prefix,
             (unsigned long long)s.description_epoch);
    }
    append("source[%s].faults        %llu\n", prefix,
           (unsigned long long)(s.faults.injected_unavailable +
                                s.faults.injected_timeouts));
    if (s.has_breaker) {
      const char* state = s.breaker_state == CircuitBreaker::State::kClosed
                              ? "closed"
                              : s.breaker_state == CircuitBreaker::State::kOpen
                                    ? "open"
                                    : "half-open";
      append("source[%s].breaker       %s (opened %llu, rejected %llu)\n",
             prefix, state, (unsigned long long)s.breaker.opened,
             (unsigned long long)s.breaker.rejected);
    }
    if (s.has_latency && s.latency.count > 0) {
      append("source[%s].latency       n=%llu mean=%lldus p50=%lldus p99=%lldus\n",
             prefix, (unsigned long long)s.latency.count,
             (long long)s.latency.mean.count(),
             (long long)s.latency.p50.count(),
             (long long)s.latency.p99.count());
    }
    if (s.hedge_quantile > 0.0) {
      append("source[%s].hedge_q       %.3f\n", prefix, s.hedge_quantile);
    }
    if (s.cost_penalty != 1.0) {
      append("source[%s].cost_penalty  %.1fx\n", prefix, s.cost_penalty);
    }
  }
  return out;
}

Result<std::string> Mediator::ExplainText(const std::string& sql,
                                          Strategy strategy) {
  GC_ASSIGN_OR_RETURN(const Prepared prepared, Prepare(sql));
  if (prepared.unsatisfiable) {
    return std::string("EmptyResult (condition simplifies to FALSE)\n");
  }
  GC_ASSIGN_OR_RETURN(const PlanPtr plan, PlanPrepared(prepared, strategy));
  return PrintPlan(*plan, prepared.entry->schema(),
                   &prepared.entry->handle()->cost_model());
}

}  // namespace gencompact
