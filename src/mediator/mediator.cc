#include "mediator/mediator.h"

#include <cstdio>

#include "expr/simplify.h"
#include "plan/plan_printer.h"

namespace gencompact {

Status Mediator::RegisterSource(SourceDescription description,
                                std::unique_ptr<Table> table) {
  plan_cache_.Clear();  // a new source invalidates nothing, but keep simple
  return catalog_.Register(std::move(description), std::move(table));
}

Result<Mediator::Prepared> Mediator::PrepareParts(
    CatalogEntry* entry, ConditionPtr condition,
    const std::vector<std::string>& attrs) {
  Prepared prepared;
  prepared.entry = entry;
  prepared.condition = std::move(condition);
  if (attrs.empty()) {
    prepared.attrs = entry->schema().AllAttributes();
  } else {
    GC_ASSIGN_OR_RETURN(prepared.attrs, entry->schema().MakeSet(attrs));
  }
  if (simplify_conditions_) {
    ConditionPtr simplified = SimplifyCondition(prepared.condition);
    if (simplified == nullptr) {
      prepared.unsatisfiable = true;
    } else {
      prepared.condition = std::move(simplified);
    }
  }
  return prepared;
}

Result<Mediator::Prepared> Mediator::Prepare(const std::string& sql) {
  GC_ASSIGN_OR_RETURN(const ParsedQuery parsed, ParseSql(sql));
  GC_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Find(parsed.source));
  return PrepareParts(entry, parsed.condition, parsed.select_list);
}

Result<PlanPtr> Mediator::PlanPrepared(const Prepared& prepared,
                                       Strategy strategy) {
  const PlanCacheKey cache_key =
      PlanCache::MakeKey(prepared.entry->source_id(), strategy,
                         *prepared.condition, prepared.attrs);
  if (const std::optional<PlanPtr> cached = plan_cache_.Lookup(cache_key)) {
    return *cached;
  }
  // No per-source planning lock: the Checker memoizes behind its own
  // shared-lock cache (keyed by interned ConditionId) and serializes only
  // its Earley recognizer on memo misses, so concurrent cache-miss planning
  // against one source proceeds in parallel. Two clients racing on the very
  // same key plan twice in the worst case; Insert treats the second result
  // as a refresh of an identical plan.
  const std::unique_ptr<PlannerStrategy> planner =
      MakePlanner(strategy, prepared.entry->handle());
  GC_ASSIGN_OR_RETURN(PlanPtr plan,
                      planner->Plan(prepared.condition, prepared.attrs));
  // Feasibility guarantee: validate capability-aware strategies' plans
  // before execution. (The naive baseline intentionally emits plans the
  // source may reject; its failures surface at execution time.)
  if (strategy != Strategy::kNaive) {
    GC_RETURN_IF_ERROR(ValidatePlanFor(*plan, prepared.attrs,
                                       prepared.entry->handle()->checker()));
  }
  // The pinned condition keeps this entry's key re-internable: as long as
  // the plan is cached, the same query text hash-conses back to the same
  // ConditionId and hits.
  plan_cache_.Insert(cache_key, plan, prepared.condition);
  return plan;
}

Result<Mediator::QueryResult> Mediator::ExecutePrepared(
    const Prepared& prepared, Strategy strategy) {
  QueryResult result;
  if (prepared.unsatisfiable) {
    // Proven empty during simplification: no plan, no source contact.
    result.rows = RowSet(RowLayout(
        prepared.attrs, prepared.entry->schema().num_attributes()));
    return result;
  }
  GC_ASSIGN_OR_RETURN(PlanPtr plan, PlanPrepared(prepared, strategy));

  Executor executor(prepared.entry->source(), pool_.get());
  GC_ASSIGN_OR_RETURN(RowSet rows, executor.Execute(*plan));

  result.rows = std::move(rows);
  result.estimated_cost = prepared.entry->handle()->cost_model().PlanCost(*plan);
  result.plan = std::move(plan);
  result.exec = executor.stats();
  const SourceDescription& description = prepared.entry->handle()->description();
  result.true_cost = result.exec.TrueCost(description.k1(), description.k2());
  return result;
}

Result<Mediator::QueryResult> Mediator::Query(const std::string& sql,
                                              Strategy strategy) {
  if (IsJoinQuery(sql)) return QueryJoin(sql);
  GC_ASSIGN_OR_RETURN(const Prepared prepared, Prepare(sql));
  return ExecutePrepared(prepared, strategy);
}

Result<Mediator::QueryResult> Mediator::QueryJoin(
    const std::string& sql, JoinProcessor::Options options) {
  GC_ASSIGN_OR_RETURN(const ParsedJoinQuery parsed, ParseJoinSql(sql));
  GC_ASSIGN_OR_RETURN(CatalogEntry * left, catalog_.Find(parsed.left_source));
  GC_ASSIGN_OR_RETURN(CatalogEntry * right, catalog_.Find(parsed.right_source));

  JoinQuery join;
  join.left_source = parsed.left_source;
  join.right_source = parsed.right_source;
  for (const auto& [l, r] : parsed.keys) join.keys.push_back({l, r});
  join.condition = parsed.condition;
  join.select = parsed.select_list;

  JoinProcessor processor(left, right, options);
  GC_ASSIGN_OR_RETURN(const JoinPlanOutcome outcome, processor.Plan(join));
  GC_ASSIGN_OR_RETURN(RowSet rows, processor.Execute(join));

  QueryResult result;
  result.rows = std::move(rows);
  result.plan = outcome.left_plan;
  result.estimated_cost = outcome.estimated_cost;
  const JoinExecStats& stats = processor.stats();
  result.exec.source_queries =
      stats.left.source_queries + stats.right.source_queries;
  result.exec.rows_transferred =
      stats.left.rows_transferred + stats.right.rows_transferred;
  result.true_cost =
      stats.left.TrueCost(left->handle()->description().k1(),
                          left->handle()->description().k2()) +
      stats.right.TrueCost(right->handle()->description().k1(),
                           right->handle()->description().k2());
  return result;
}

Result<Mediator::QueryResult> Mediator::QueryCondition(
    const std::string& source, const ConditionPtr& condition,
    const std::vector<std::string>& attrs, Strategy strategy) {
  GC_ASSIGN_OR_RETURN(CatalogEntry * entry, catalog_.Find(source));
  GC_ASSIGN_OR_RETURN(const Prepared prepared,
                      PrepareParts(entry, condition, attrs));
  return ExecutePrepared(prepared, strategy);
}

Result<PlanPtr> Mediator::Explain(const std::string& sql, Strategy strategy) {
  GC_ASSIGN_OR_RETURN(const Prepared prepared, Prepare(sql));
  if (prepared.unsatisfiable) {
    return Status::InvalidArgument(
        "condition is unsatisfiable; the mediator answers it with the empty "
        "set without a plan");
  }
  return PlanPrepared(prepared, strategy);
}

Result<std::string> Mediator::ExplainAnalyze(const std::string& sql,
                                             Strategy strategy) {
  GC_ASSIGN_OR_RETURN(const Prepared prepared, Prepare(sql));
  if (prepared.unsatisfiable) {
    return std::string(
        "EmptyResult (condition simplifies to FALSE; 0 rows, no source "
        "contact)\n");
  }
  GC_ASSIGN_OR_RETURN(const PlanPtr plan, PlanPrepared(prepared, strategy));

  Executor executor(prepared.entry->source());
  GC_ASSIGN_OR_RETURN(const RowSet rows, executor.Execute(*plan));

  const CostModel& model = prepared.entry->handle()->cost_model();
  std::string out = PrintPlan(*plan, prepared.entry->schema(), &model);
  out += "\nsource queries (estimated vs actual result rows):\n";
  std::vector<const PlanNode*> queries;
  plan->CollectSourceQueries(&queries);
  double true_cost = 0;
  const SourceDescription& description = prepared.entry->handle()->description();
  for (const PlanNode* query : queries) {
    const double estimated =
        model.EstimateResultRows(*query->condition(), query->attrs());
    GC_ASSIGN_OR_RETURN(
        const RowSet actual,
        prepared.entry->source()->Execute(*query->condition(), query->attrs()));
    true_cost += description.k1() +
                 description.k2() * static_cast<double>(actual.size());
    char line[512];
    std::snprintf(line, sizeof(line), "  est=%-10.1f actual=%-8zu  SP(%s)\n",
                  estimated, actual.size(),
                  query->condition()->ToString().c_str());
    out += line;
  }
  char summary[256];
  std::snprintf(summary, sizeof(summary),
                "result: %zu rows; estimated cost %.1f, true cost %.1f\n",
                rows.size(), model.PlanCost(*plan), true_cost);
  out += summary;
  return out;
}

Result<std::string> Mediator::ExplainText(const std::string& sql,
                                          Strategy strategy) {
  GC_ASSIGN_OR_RETURN(const Prepared prepared, Prepare(sql));
  if (prepared.unsatisfiable) {
    return std::string("EmptyResult (condition simplifies to FALSE)\n");
  }
  GC_ASSIGN_OR_RETURN(const PlanPtr plan, PlanPrepared(prepared, strategy));
  return PrintPlan(*plan, prepared.entry->schema(),
                   &prepared.entry->handle()->cost_model());
}

}  // namespace gencompact
