#ifndef GENCOMPACT_MEDIATOR_JOIN_H_
#define GENCOMPACT_MEDIATOR_JOIN_H_

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "mediator/catalog.h"
#include "plan/plan.h"

namespace gencompact {

/// The complex-query extension sketched by the paper's Section 1 / [2]:
/// selection queries are "the building blocks of more complex queries".
/// This module plans and executes two-source equi-joins where each side is
/// a capability-limited Internet source, using GenCompact for every
/// per-source select-project building block.
///
/// Attribute references are dot-qualified: "cars.make", "dealers.city".

/// One equi-join column pair, qualified.
struct JoinKey {
  std::string left;   ///< "leftsource.attr"
  std::string right;  ///< "rightsource.attr"
};

/// A two-source join target query.
struct JoinQuery {
  std::string left_source;
  std::string right_source;
  std::vector<JoinKey> keys;          ///< at least one
  ConditionPtr condition;             ///< over qualified attrs; may be True
  std::vector<std::string> select;    ///< qualified; empty = all attributes
};

/// How the right side is evaluated.
enum class JoinMethod {
  /// Plan and execute both sides independently; hash-join at the mediator.
  kIndependent,
  /// Execute the left side first, then query the right side once per batch
  /// of distinct left join values (a bind-join): the join condition is
  /// pushed to the right source as a disjunction of equalities — exactly
  /// the value-list shape many web forms accept.
  kBind,
};

const char* JoinMethodName(JoinMethod method);

/// cond ∧ (key = v1 or key = v2 or ...) — the bound value-list query shape
/// a bind-join pushes to the non-driving source (exactly what many web
/// forms accept). Shared by the two-source processor, the federation
/// processor's bind edges, and their feasibility probes.
ConditionPtr BindBatchCondition(const ConditionPtr& cond,
                                const std::string& key_attr,
                                const std::vector<Value>& values);

struct JoinPlanOutcome {
  JoinMethod method = JoinMethod::kIndependent;
  PlanPtr left_plan;
  /// kIndependent: the complete right-side plan. kBind: right-side plans
  /// are generated per value batch during execution.
  PlanPtr right_plan;
  /// Residual condition evaluated at the mediator on joined rows (True if
  /// none).
  ConditionPtr residual;
  double estimated_cost = 0.0;
};

struct JoinExecStats {
  ExecStats left;
  ExecStats right;  ///< accumulated over every right-side attempt (failover)
  size_t bind_batches = 0;
  size_t joined_rows = 0;
  /// Completeness composition: markers from both sides' executors. A
  /// truncated side shrinks the join silently unless these surface — the
  /// mediator folds them into QueryResult::completeness.
  std::vector<TruncationRecord> truncations;
  std::vector<std::string> dropped_sub_queries;
  /// Alternate sources tried after the primary right side failed retryably.
  size_t right_failovers = 0;
  /// The source that actually answered the right side (the primary unless a
  /// failover succeeded).
  std::string right_source_used;
};

/// Options for JoinProcessor.
struct JoinOptions {
  /// Distinct left-side join values per bind batch (web forms limit list
  /// lengths).
  size_t bind_batch_size = 8;
  /// Batch width of the data plane (0 = the row-at-a-time reference path).
  /// > 0 keeps columnar batches through the join boundary: side executors
  /// run batched, bind batches accumulate by in-place merge (reusing cached
  /// row hashes), and the mediator hash join builds/probes on folded key
  /// hashes, composing joined-row hashes from the cached side hashes
  /// instead of re-hashing payloads. Results are value-identical to the
  /// row path.
  size_t batch_width = 0;
  /// Whole-join deadline (0 = none). The left side runs with its per-sub-query
  /// deadline capped to this budget; the right side inherits whatever budget
  /// remains once the left completes — and when nothing remains it is failed
  /// with kDeadlineExceeded *before* planning, so zero right-side source
  /// calls are made for an already-doomed join.
  std::chrono::microseconds deadline{0};
  /// Clock the deadline is measured on (null = the real clock). The mediator
  /// injects its own clock so FakeClock tests drive join deadlines.
  Clock* clock = nullptr;
  /// Retry/backoff policy applied to both sides' executors.
  RetryPolicy retry;
  /// Consider the bind-join method at all.
  bool enable_bind = true;
  /// Force a method instead of costing both (for tests/benchmarks).
  std::optional<JoinMethod> force_method;
  /// Replica candidates for the right (non-driving) side: when its fetches
  /// fail retryably, the join re-plans and re-runs that side against each
  /// alternate in turn (skipping open-circuit ones). The mediator populates
  /// this with schema-compatible catalog entries when join failover is
  /// enabled; empty (the default) = no failover.
  std::vector<CatalogEntry*> right_alternates;
};

/// Plans and executes two-source joins against catalog entries.
class JoinProcessor {
 public:
  using Options = JoinOptions;

  JoinProcessor(CatalogEntry* left, CatalogEntry* right, Options options = {})
      : left_(left), right_(right), options_(options) {}

  /// Output schema of the join: left attributes then right attributes, all
  /// dot-qualified.
  Result<Schema> OutputSchema(const JoinQuery& query) const;

  /// Splits the condition, plans both sides, and picks the cheaper method.
  Result<JoinPlanOutcome> Plan(const JoinQuery& query);

  /// Plans + executes; returns joined rows projected to `query.select`.
  Result<RowSet> Execute(const JoinQuery& query);

  const JoinExecStats& stats() const { return stats_; }

 private:
  struct SplitCondition {
    ConditionPtr left;      // unqualified, over the left schema
    ConditionPtr right;     // unqualified, over the right schema
    ConditionPtr residual;  // qualified, over the join schema
  };
  Result<SplitCondition> Split(const JoinQuery& query) const;

  CatalogEntry* left_;
  CatalogEntry* right_;
  Options options_;
  JoinExecStats stats_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_JOIN_H_
