#include "mediator/wrapper.h"

#include "expr/condition_parser.h"
#include "expr/simplify.h"
#include "plan/plan_validator.h"

namespace gencompact {

Wrapper::Wrapper(SourceDescription description, const Table* table,
                 GenCompactOptions options)
    : handle_(std::move(description), table),
      source_(table, &handle_.description()),
      options_(options) {
  // The wrapper's contract is exact relational answers.
  options_.ipg.safe_combination = true;
}

Result<RowSet> Wrapper::Query(const ConditionPtr& condition,
                              const AttributeSet& attrs) {
  ++stats_.queries;

  const ConditionPtr simplified = SimplifyCondition(condition);
  if (simplified == nullptr) {
    // Unsatisfiable: answer locally.
    ++stats_.answered;
    ++stats_.answered_without_source;
    return RowSet(RowLayout(attrs, schema().num_attributes()));
  }

  GenCompactPlanner planner(&handle_, options_);
  Result<PlanPtr> plan = planner.Plan(simplified, attrs);
  if (!plan.ok()) {
    ++stats_.infeasible;
    return plan.status();
  }
  GC_RETURN_IF_ERROR(ValidatePlanFor(**plan, attrs, handle_.checker()));

  ExecOptions exec_options;
  exec_options.batch_width = batch_width_;
  Executor executor(&source_, nullptr, exec_options);
  const uint64_t wire_before = source_.stats().wire_bytes;
  GC_ASSIGN_OR_RETURN(RowSet rows, executor.Execute(**plan));
  ++stats_.answered;
  stats_.source_queries += executor.stats().source_queries;
  stats_.rows_transferred += executor.stats().rows_transferred;
  stats_.wire_bytes += source_.stats().wire_bytes - wire_before;
  return rows;
}

Result<RowSet> Wrapper::Query(const std::string& condition_text,
                              const std::vector<std::string>& attr_names) {
  GC_ASSIGN_OR_RETURN(const ConditionPtr condition,
                      ParseCondition(condition_text));
  AttributeSet attrs;
  if (attr_names.empty()) {
    attrs = schema().AllAttributes();
  } else {
    GC_ASSIGN_OR_RETURN(attrs, schema().MakeSet(attr_names));
  }
  return Query(condition, attrs);
}

}  // namespace gencompact
