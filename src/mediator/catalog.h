#ifndef GENCOMPACT_MEDIATOR_CATALOG_H_
#define GENCOMPACT_MEDIATOR_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "exec/circuit_breaker.h"
#include "exec/source.h"
#include "planner/source_handle.h"

namespace gencompact {

/// A registered source: its planning handle (closed description, stats,
/// cost model, checker) and its executable capability-enforcing wrapper.
class CatalogEntry {
 public:
  CatalogEntry(SourceDescription description, std::unique_ptr<Table> table,
               uint32_t source_id, bool apply_commutativity_closure = true);

  const std::string& name() const { return handle_.description().source_name(); }
  const Schema& schema() const { return handle_.schema(); }
  SourceHandle* handle() { return &handle_; }
  Source* source() { return &source_; }
  const Table& table() const { return *table_; }

  /// Dense registration-order id, the source component of PlanCacheKey
  /// (names stay out of the cache's hot path).
  uint32_t source_id() const { return source_id_; }

  /// Attaches the per-source circuit breaker, shared by every execution
  /// against this source. Call during registration, before concurrent
  /// queries start (like the rest of source configuration).
  void EnableCircuitBreaker(const CircuitBreakerOptions& options,
                            Clock* clock) {
    breaker_ = std::make_unique<CircuitBreaker>(options, clock);
  }

  /// The shared breaker, or null when fault tolerance is not configured.
  CircuitBreaker* breaker() { return breaker_.get(); }
  const CircuitBreaker* breaker() const { return breaker_.get(); }

 private:
  std::unique_ptr<Table> table_;
  SourceHandle handle_;
  Source source_;
  std::unique_ptr<CircuitBreaker> breaker_;
  uint32_t source_id_;
};

/// Name → source registry for the mediator. Lookups from concurrent client
/// threads take a shared lock; registration takes an exclusive lock. Entry
/// pointers remain stable once registered (entries are never removed).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a source; InvalidArgument if the name is taken.
  Status Register(SourceDescription description, std::unique_ptr<Table> table,
                  bool apply_commutativity_closure = true);

  /// Looks up a source by name; NotFound if absent.
  Result<CatalogEntry*> Find(const std::string& name);

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return entries_.size();
  }

  /// Visits every registered source in name order under a shared lock
  /// (used by the mediator-wide stats snapshot).
  void ForEach(const std::function<void(CatalogEntry*)>& fn) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) fn(entry.get());
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<CatalogEntry>> entries_;
  uint32_t next_source_id_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_CATALOG_H_
