#ifndef GENCOMPACT_MEDIATOR_CATALOG_H_
#define GENCOMPACT_MEDIATOR_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "exec/source.h"
#include "planner/source_handle.h"

namespace gencompact {

/// A registered source: its planning handle (closed description, stats,
/// cost model, checker) and its executable capability-enforcing wrapper.
class CatalogEntry {
 public:
  CatalogEntry(SourceDescription description, std::unique_ptr<Table> table,
               bool apply_commutativity_closure = true);

  const std::string& name() const { return handle_.description().source_name(); }
  const Schema& schema() const { return handle_.schema(); }
  SourceHandle* handle() { return &handle_; }
  Source* source() { return &source_; }
  const Table& table() const { return *table_; }

 private:
  std::unique_ptr<Table> table_;
  SourceHandle handle_;
  Source source_;
};

/// Name → source registry for the mediator.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a source; InvalidArgument if the name is taken.
  Status Register(SourceDescription description, std::unique_ptr<Table> table,
                  bool apply_commutativity_closure = true);

  /// Looks up a source by name; NotFound if absent.
  Result<CatalogEntry*> Find(const std::string& name);

  size_t size() const { return entries_.size(); }

 private:
  std::map<std::string, std::unique_ptr<CatalogEntry>> entries_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_CATALOG_H_
