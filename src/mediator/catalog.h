#ifndef GENCOMPACT_MEDIATOR_CATALOG_H_
#define GENCOMPACT_MEDIATOR_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>

#include "exec/source.h"
#include "planner/source_handle.h"

namespace gencompact {

/// A registered source: its planning handle (closed description, stats,
/// cost model, checker) and its executable capability-enforcing wrapper.
class CatalogEntry {
 public:
  CatalogEntry(SourceDescription description, std::unique_ptr<Table> table,
               uint32_t source_id, bool apply_commutativity_closure = true);

  const std::string& name() const { return handle_.description().source_name(); }
  const Schema& schema() const { return handle_.schema(); }
  SourceHandle* handle() { return &handle_; }
  Source* source() { return &source_; }
  const Table& table() const { return *table_; }

  /// Dense registration-order id, the source component of PlanCacheKey
  /// (names stay out of the cache's hot path).
  uint32_t source_id() const { return source_id_; }

 private:
  std::unique_ptr<Table> table_;
  SourceHandle handle_;
  Source source_;
  uint32_t source_id_;
};

/// Name → source registry for the mediator. Lookups from concurrent client
/// threads take a shared lock; registration takes an exclusive lock. Entry
/// pointers remain stable once registered (entries are never removed).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a source; InvalidArgument if the name is taken.
  Status Register(SourceDescription description, std::unique_ptr<Table> table,
                  bool apply_commutativity_closure = true);

  /// Looks up a source by name; NotFound if absent.
  Result<CatalogEntry*> Find(const std::string& name);

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<CatalogEntry>> entries_;
  uint32_t next_source_id_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_CATALOG_H_
