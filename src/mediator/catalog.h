#ifndef GENCOMPACT_MEDIATOR_CATALOG_H_
#define GENCOMPACT_MEDIATOR_CATALOG_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "exec/circuit_breaker.h"
#include "exec/latency_tracker.h"
#include "exec/source.h"
#include "planner/source_handle.h"
#include "ssdl/check_memo.h"

namespace gencompact {

/// A registered source: its planning handle (closed description, stats,
/// cost model, checker) and its executable capability-enforcing wrapper.
class CatalogEntry {
 public:
  CatalogEntry(SourceDescription description, std::unique_ptr<Table> table,
               uint32_t source_id, bool apply_commutativity_closure = true);

  const std::string& name() const {
    return handle_->description().source_name();
  }
  const Schema& schema() const { return handle_->schema(); }
  SourceHandle* handle() { return handle_.get(); }
  Source* source() { return source_.get(); }
  const Source* source() const { return source_.get(); }
  const Table& table() const { return *table_; }

  /// Dense registration-order id, the source component of PlanCacheKey
  /// (names stay out of the cache's hot path).
  uint32_t source_id() const { return source_id_; }

  /// Monotonic description epoch: 0 at registration, bumped by every
  /// ReloadDescription. The cross-query Check memo keys on it, so entries
  /// computed against a superseded description can never satisfy a lookup.
  uint64_t description_epoch() const { return description_epoch_; }

  /// Replaces this source's SSDL description in place (the entry pointer,
  /// name, source id, table, breaker, and latency digest all survive):
  /// rebuilds the planning handle and enforcement wrapper against the new
  /// description, bumps the description epoch, invalidates this source's
  /// cross-query Check memo entries, and re-wires the cost penalty and the
  /// shared memo. The new description must carry the same source name and
  /// the table's schema. Like registration, not thread-safe against
  /// in-flight queries — quiesce first. (The wrapper's execution counters
  /// and fault policy reset with the wrapper.)
  Status ReloadDescription(SourceDescription description);

  /// Attaches the per-source circuit breaker, shared by every execution
  /// against this source. Call during registration, before concurrent
  /// queries start (like the rest of source configuration).
  void EnableCircuitBreaker(const CircuitBreakerOptions& options,
                            Clock* clock) {
    breaker_ = std::make_unique<CircuitBreaker>(options, clock);
  }

  /// Batch width of this source's scan data plane (0 = the row-at-a-time
  /// reference path). Applied to the enforcement wrapper now and re-applied
  /// by ReloadDescription (reloads rebuild the wrapper). Call during
  /// registration, before concurrent queries.
  void set_batch_width(size_t width) {
    batch_width_ = width;
    source_->set_batch_width(width);
  }
  size_t batch_width() const { return batch_width_; }

  /// The shared breaker, or null when fault tolerance is not configured.
  CircuitBreaker* breaker() { return breaker_.get(); }
  const CircuitBreaker* breaker() const { return breaker_.get(); }

  /// Attaches the per-source latency digest, fed by every execution against
  /// this source (successful call durations) and read by hedging, the cost
  /// penalty, and the stats snapshot. Call during registration.
  void EnableLatencyTracking() {
    latency_ = std::make_unique<LatencyTracker>();
  }

  /// The shared digest, or null when latency tracking is not configured.
  LatencyTracker* latency_tracker() { return latency_.get(); }
  const LatencyTracker* latency_tracker() const { return latency_.get(); }

  /// Wires the mediator's cross-query Check memo (must outlive the entry)
  /// into this source's planning and enforcement Checkers, keyed by this
  /// entry's source id and current description epoch. Call during
  /// registration; ReloadDescription re-wires automatically.
  void EnableCheckMemo(CheckMemo* memo);

  /// The shared memo, or null when the cross-query memo is not configured.
  CheckMemo* check_memo() { return check_memo_; }

  /// Arms the breaker-aware cost penalty: wires this entry's HealthPenalty
  /// into its cost model and remembers how health maps to a multiplier.
  /// Call during registration.
  void EnableCostPenalty(const CostPenaltyOptions& options) {
    penalty_options_ = options;
    penalty_enabled_ = true;
    handle_->mutable_cost_model()->set_health_penalty(&penalty_);
  }

  /// Recomputes the k1 multiplier from the breaker's effective state and
  /// the latency digest's tail; returns the multiplier now in force (1 when
  /// healthy or when the penalty is not enabled). The mediator calls this
  /// once per query before planning — costs seen by the planner reflect
  /// health at planning time, and a multiplier > 1 tells the mediator to
  /// keep the resulting plan out of the cache.
  double RefreshCostPenalty();

  bool cost_penalty_enabled() const { return penalty_enabled_; }
  double cost_penalty_multiplier() const { return penalty_.multiplier(); }

 private:
  std::unique_ptr<Table> table_;
  std::unique_ptr<SourceHandle> handle_;
  std::unique_ptr<Source> source_;
  std::unique_ptr<CircuitBreaker> breaker_;
  std::unique_ptr<LatencyTracker> latency_;
  CheckMemo* check_memo_ = nullptr;  ///< shared, owned by the mediator
  HealthPenalty penalty_;
  CostPenaltyOptions penalty_options_;
  bool penalty_enabled_ = false;
  uint32_t source_id_;
  uint64_t description_epoch_ = 0;
  size_t batch_width_ = 0;  ///< survives description reloads
  bool apply_commutativity_closure_;
};

/// Name → source registry for the mediator. Lookups from concurrent client
/// threads take a shared lock; registration takes an exclusive lock. Entry
/// pointers remain stable once registered (entries are never removed).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a source; InvalidArgument if the name is taken.
  Status Register(SourceDescription description, std::unique_ptr<Table> table,
                  bool apply_commutativity_closure = true);

  /// Looks up a source by name; NotFound if absent.
  Result<CatalogEntry*> Find(const std::string& name);

  /// Reloads the description of the registered source it names (see
  /// CatalogEntry::ReloadDescription); NotFound if absent. Takes the
  /// exclusive lock, like registration — quiesce queries first.
  Result<CatalogEntry*> Reload(SourceDescription description);

  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return entries_.size();
  }

  /// Visits every registered source in name order under a shared lock
  /// (used by the mediator-wide stats snapshot).
  void ForEach(const std::function<void(CatalogEntry*)>& fn) const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) fn(entry.get());
  }

  /// Sources other than `entry` exporting an identical schema (attribute
  /// names and types, in order) — replica candidates for cross-source
  /// failover. Name order; entry pointers are stable.
  std::vector<CatalogEntry*> SchemaCompatibleAlternates(
      const CatalogEntry& entry) const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<CatalogEntry>> entries_;
  uint32_t next_source_id_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_CATALOG_H_
