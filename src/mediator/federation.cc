#include "mediator/federation.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "expr/canonical.h"
#include "expr/condition_eval.h"
#include "plan/plan_validator.h"
#include "planner/gen_compact.h"

namespace gencompact {

namespace {

std::string Qualify(const std::string& source, const std::string& attr) {
  return source + "." + attr;
}

/// "src.attr" -> "attr" when the qualifier matches `source`.
std::optional<std::string> Unqualify(const std::string& name,
                                     const std::string& source) {
  if (name.size() > source.size() + 1 &&
      name.compare(0, source.size(), source) == 0 &&
      name[source.size()] == '.') {
    return name.substr(source.size() + 1);
  }
  return std::nullopt;
}

/// Rewrites every atom's attribute through `rename`; structure unchanged.
ConditionPtr RenameAttributes(
    const ConditionPtr& cond,
    const std::function<std::string(const std::string&)>& rename) {
  switch (cond->kind()) {
    case ConditionNode::Kind::kTrue:
      return cond;
    case ConditionNode::Kind::kAtom: {
      const AtomicCondition& atom = cond->atom();
      return ConditionNode::Atom(rename(atom.attribute), atom.op,
                                 atom.constant);
    }
    case ConditionNode::Kind::kAnd:
    case ConditionNode::Kind::kOr: {
      std::vector<ConditionPtr> children;
      children.reserve(cond->children().size());
      for (const ConditionPtr& child : cond->children()) {
        children.push_back(RenameAttributes(child, rename));
      }
      return ConditionNode::Connector(cond->kind(), std::move(children));
    }
  }
  return cond;
}

Result<PlanPtr> PlanLeaf(CatalogEntry* entry, const ConditionPtr& cond,
                         const AttributeSet& attrs) {
  GenCompactPlanner planner(entry->handle());
  GC_ASSIGN_OR_RETURN(PlanPtr plan, planner.Plan(cond, attrs));
  GC_RETURN_IF_ERROR(
      ValidatePlanFor(*plan, attrs, entry->handle()->checker()));
  return plan;
}

void FoldExec(ExecStats* into, const ExecStats& from) {
  into->source_queries += from.source_queries;
  into->rows_transferred += from.rows_transferred;
  into->retries += from.retries;
  into->failed_sub_queries += from.failed_sub_queries;
  into->breaker_rejections += from.breaker_rejections;
  into->deadlines_exceeded += from.deadlines_exceeded;
  into->dropped_branches += from.dropped_branches;
  into->hedges_launched += from.hedges_launched;
  into->hedges_won += from.hedges_won;
  into->hedges_cancelled += from.hedges_cancelled;
  into->pages_fetched += from.pages_fetched;
  into->truncated_sub_queries += from.truncated_sub_queries;
}

std::vector<Value> ProbeValues(ValueType type, size_t count) {
  std::vector<Value> values;
  values.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    values.push_back(type == ValueType::kString
                         ? Value::String("probe" + std::to_string(i))
                         : Value::Int(static_cast<int64_t>(i)));
  }
  return values;
}

}  // namespace

// ---------------------------------------------------------------------------
// Prepared query-graph state.

struct FederationProcessor::Prepared {
  const FederatedQuery* query = nullptr;

  struct Rel {
    ConditionPtr pushdown;       ///< unqualified, over the relation schema
    AttributeSet needs;          ///< positions the relation must provide
    std::vector<int> need_list;  ///< needs.Indices()
    RowLayout segment;           ///< slot lookup within the fetched segment
    int base = 0;                ///< first joined-schema position

    Rel() : segment(AttributeSet(), 0) {}
  };
  std::vector<Rel> rels;

  struct Edge {
    int a = 0;
    int b = 0;
    /// Equi-join attr pairs, oriented (attr in a, attr in b); the first
    /// pair's key drives bind-joins over this edge.
    std::vector<std::pair<int, int>> keys;
  };
  std::vector<Edge> edges;

  ConditionPtr residual;  ///< qualified; True if none
  Schema joined_schema;   ///< needed attrs per relation, FROM order, qualified
};

/// One partial join result during tree execution: dedup'd rows whose slots
/// are the concatenated needed-attribute segments of the member relations,
/// ascending by relation index (which is exactly the joined-schema position
/// order restricted to the subset).
struct FederationProcessor::Intermediate {
  uint64_t set = 0;
  RowSet rows;
  std::vector<int> rels;           ///< member relation indices, ascending
  std::vector<size_t> rel_offset;  ///< slot offset of each member's segment
  size_t width = 0;

  /// Slot of (relation, relation-schema attribute) within these rows.
  int SlotOf(const Prepared& prepared, int rel, int attr) const {
    for (size_t i = 0; i < rels.size(); ++i) {
      if (rels[i] == rel) {
        return static_cast<int>(rel_offset[i]) +
               prepared.rels[rel].segment.SlotOf(attr);
      }
    }
    return -1;
  }
};

FederationProcessor::FederationProcessor(std::vector<CatalogEntry*> entries,
                                         FederationOptions options)
    : entries_(std::move(entries)), options_(std::move(options)) {}

Result<Schema> FederationProcessor::OutputSchema(
    const FederatedQuery& query) const {
  size_t total = 0;
  for (const CatalogEntry* entry : entries_) {
    total += entry->schema().num_attributes();
  }
  if (total > 64) {
    return Status::InvalidArgument(
        "joined schema exceeds the 64-attribute limit");
  }
  std::vector<AttributeDef> attrs;
  for (size_t i = 0; i < entries_.size(); ++i) {
    for (const AttributeDef& a : entries_[i]->schema().attributes()) {
      attrs.push_back({Qualify(query.sources[i], a.name), a.type});
    }
  }
  return Schema(std::move(attrs));
}

Result<FederationProcessor::Prepared> FederationProcessor::PrepareQuery(
    const FederatedQuery& query) const {
  if (query.sources.size() < 2) {
    return Status::InvalidArgument("federated query needs at least 2 sources");
  }
  if (entries_.size() != query.sources.size()) {
    return Status::InvalidArgument(
        "catalog entries do not align with the query's FROM list");
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i]->name() != query.sources[i]) {
      return Status::InvalidArgument("catalog entry '" + entries_[i]->name() +
                                     "' does not match source '" +
                                     query.sources[i] + "'");
    }
  }
  if (query.keys.empty()) {
    return Status::InvalidArgument("federated query needs join key pairs");
  }
  const size_t n = entries_.size();
  if (n > 63) {
    return Status::InvalidArgument("too many relations (limit 63)");
  }

  Prepared prepared;
  prepared.query = &query;
  prepared.rels.resize(n);

  // "src.attr" -> (relation, attribute position); nullopt if unresolvable.
  const auto resolve =
      [&](const std::string& name) -> std::optional<std::pair<int, int>> {
    for (size_t i = 0; i < n; ++i) {
      const std::optional<std::string> local =
          Unqualify(name, query.sources[i]);
      if (!local.has_value()) continue;
      const std::optional<int> index = entries_[i]->schema().IndexOf(*local);
      if (index.has_value()) return std::make_pair(static_cast<int>(i), *index);
    }
    return std::nullopt;
  };

  // Split the condition: single-relation conjuncts push down (renamed to
  // unqualified); multi-relation conjuncts stay residual at the join root.
  const ConditionPtr canonical = Canonicalize(
      query.condition != nullptr ? query.condition : ConditionNode::True());
  std::vector<ConditionPtr> conjuncts;
  if (canonical->is_true()) {
    // nothing to push
  } else if (canonical->kind() == ConditionNode::Kind::kAnd) {
    conjuncts = canonical->children();
  } else {
    conjuncts = {canonical};
  }
  std::vector<std::vector<ConditionPtr>> pushdown(n);
  std::vector<ConditionPtr> residual;
  for (const ConditionPtr& conjunct : conjuncts) {
    uint64_t refs = 0;
    std::string unknown;
    std::vector<const ConditionNode*> stack = {conjunct.get()};
    while (!stack.empty()) {
      const ConditionNode* node = stack.back();
      stack.pop_back();
      if (node->is_atom()) {
        const std::optional<std::pair<int, int>> where =
            resolve(node->atom().attribute);
        if (!where.has_value()) {
          unknown = node->atom().attribute;
          break;
        }
        refs |= uint64_t{1} << where->first;
      }
      for (const ConditionPtr& child : node->children()) {
        stack.push_back(child.get());
      }
    }
    if (!unknown.empty()) {
      return Status::NotFound("condition references unknown attribute '" +
                              unknown + "' (use source-qualified names)");
    }
    if (refs != 0 && (refs & (refs - 1)) == 0) {
      int rel = 0;
      while (((refs >> rel) & 1u) == 0) ++rel;
      pushdown[rel].push_back(
          RenameAttributes(conjunct, [&](const std::string& name) {
            return *Unqualify(name, query.sources[rel]);
          }));
    } else if (refs != 0) {
      residual.push_back(conjunct);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    prepared.rels[i].pushdown =
        pushdown[i].empty() ? ConditionNode::True()
                            : ConditionNode::And(std::move(pushdown[i]));
  }
  prepared.residual = residual.empty()
                          ? ConditionNode::True()
                          : ConditionNode::And(std::move(residual));

  // Join keys -> query-graph edges (a < b; parallel key pairs merge).
  for (const JoinKey& key : query.keys) {
    const std::optional<std::pair<int, int>> l = resolve(key.left);
    const std::optional<std::pair<int, int>> r = resolve(key.right);
    if (!l.has_value() || !r.has_value()) {
      return Status::NotFound("join key '" +
                              (l.has_value() ? key.right : key.left) +
                              "' does not resolve to a registered source "
                              "attribute");
    }
    if (l->first == r->first) {
      return Status::InvalidArgument(
          "join key pair references a single source: " + key.left + " = " +
          key.right);
    }
    int a = l->first, a_attr = l->second;
    int b = r->first, b_attr = r->second;
    if (a > b) {
      std::swap(a, b);
      std::swap(a_attr, b_attr);
    }
    Prepared::Edge* edge = nullptr;
    for (Prepared::Edge& e : prepared.edges) {
      if (e.a == a && e.b == b) {
        edge = &e;
        break;
      }
    }
    if (edge == nullptr) {
      prepared.edges.push_back({a, b, {}});
      edge = &prepared.edges.back();
    }
    edge->keys.emplace_back(a_attr, b_attr);
  }

  // Needed attributes per relation: its SELECT share, its residual
  // attributes, and every incident join key.
  std::vector<AttributeSet> needs(n);
  if (query.select.empty()) {
    for (size_t i = 0; i < n; ++i) needs[i] = entries_[i]->schema().AllAttributes();
  } else {
    for (const std::string& name : query.select) {
      const std::optional<std::pair<int, int>> where = resolve(name);
      if (!where.has_value()) {
        return Status::NotFound("SELECT references unknown attribute '" +
                                name + "'");
      }
      needs[where->first].Add(where->second);
    }
  }
  if (!prepared.residual->is_true()) {
    std::vector<const ConditionNode*> stack = {prepared.residual.get()};
    while (!stack.empty()) {
      const ConditionNode* node = stack.back();
      stack.pop_back();
      if (node->is_atom()) {
        const std::optional<std::pair<int, int>> where =
            resolve(node->atom().attribute);
        needs[where->first].Add(where->second);
      }
      for (const ConditionPtr& child : node->children()) {
        stack.push_back(child.get());
      }
    }
  }
  for (const Prepared::Edge& edge : prepared.edges) {
    for (const auto& [a_attr, b_attr] : edge.keys) {
      needs[edge.a].Add(a_attr);
      needs[edge.b].Add(b_attr);
    }
  }

  // Joined schema: each relation's needed attributes (ascending), qualified,
  // in FROM order — for two relations, exactly JoinProcessor's join schema.
  std::vector<AttributeDef> joined;
  for (size_t i = 0; i < n; ++i) {
    Prepared::Rel& rel = prepared.rels[i];
    rel.needs = needs[i];
    rel.need_list = needs[i].Indices();
    rel.segment =
        RowLayout(needs[i], entries_[i]->schema().num_attributes());
    rel.base = static_cast<int>(joined.size());
    for (int index : rel.need_list) {
      joined.push_back(
          {Qualify(query.sources[i], entries_[i]->schema().attribute(index).name),
           entries_[i]->schema().attribute(index).type});
    }
  }
  if (joined.size() > 64) {
    return Status::InvalidArgument(
        "joined schema exceeds the 64-attribute limit");
  }
  prepared.joined_schema = Schema(std::move(joined));
  return prepared;
}

Result<FederationPlanOutcome> FederationProcessor::PlanPrepared(
    const Prepared& prepared, const std::vector<bool>& avoid) {
  const size_t n = entries_.size();
  if (options_.force_method.has_value() && n != 2) {
    return Status::InvalidArgument(
        "force_method only applies to two-relation queries");
  }

  FederationPlanOutcome outcome;
  outcome.residual = prepared.residual;
  outcome.leaf_plans.assign(n, nullptr);
  JoinGraph& graph = outcome.graph;
  graph.fetch_cost.assign(n, -1.0);
  graph.rows.assign(n, 0.0);
  graph.bind_batch_size = options_.bind_batch_size;

  const bool force_bind =
      options_.force_method == EdgeMethod::kBind;
  const bool force_independent =
      options_.force_method == EdgeMethod::kIndependent;

  for (size_t i = 0; i < n; ++i) {
    const Prepared::Rel& rel = prepared.rels[i];
    graph.rows[i] = entries_[i]->handle()->cost_model().EstimateResultRows(
        *rel.pushdown, rel.needs);
    if (avoid[i] || (force_bind && i == 1)) continue;
    Result<PlanPtr> plan = PlanLeaf(entries_[i], rel.pushdown, rel.needs);
    if (plan.ok()) {
      graph.fetch_cost[i] =
          entries_[i]->handle()->cost_model().PlanCost(**plan);
      outcome.leaf_plans[i] = std::move(plan).value();
    }
  }

  for (const Prepared::Edge& edge : prepared.edges) {
    JoinEdge je;
    je.a = edge.a;
    je.b = edge.b;
    const auto ndv_of = [&](int rel, int attr) {
      return std::max<double>(
          1.0, static_cast<double>(
                   entries_[rel]->handle()->stats().attribute(attr).num_distinct));
    };
    je.selectivity = 1.0;
    for (const auto& [a_attr, b_attr] : edge.keys) {
      je.selectivity /= std::max(ndv_of(edge.a, a_attr), ndv_of(edge.b, b_attr));
    }
    je.a_ndv = ndv_of(edge.a, edge.keys[0].first);
    je.b_ndv = ndv_of(edge.b, edge.keys[0].second);

    // Bind feasibility per end: can this relation answer its pushdown ∧ a
    // value list on the edge's driving key? Probed with type-representative
    // constants (grammars match constants by type).
    const auto probe_bind = [&](int rel, int key_attr, bool* feasible,
                                double* setup, double* per_row) {
      *feasible = false;
      if (!options_.enable_bind || force_independent) return;
      const Prepared::Rel& r = prepared.rels[rel];
      const std::string& attr_name =
          entries_[rel]->schema().attribute(key_attr).name;
      const ConditionPtr probe = BindBatchCondition(
          r.pushdown, attr_name,
          ProbeValues(entries_[rel]->schema().attribute(key_attr).type,
                      std::max<size_t>(options_.bind_batch_size, 1)));
      if (!entries_[rel]->handle()->checker()->Supports(*probe, r.needs)) {
        return;
      }
      *feasible = true;
      *setup = entries_[rel]->handle()->cost_model().effective_k1();
      *per_row = entries_[rel]->handle()->description().k2();
    };
    probe_bind(edge.a, edge.keys[0].first, &je.bind_a, &je.bind_a_setup,
               &je.bind_a_per_row);
    probe_bind(edge.b, edge.keys[0].second, &je.bind_b, &je.bind_b_setup,
               &je.bind_b_per_row);
    graph.edges.push_back(je);
  }

  const uint64_t full = (uint64_t{1} << n) - 1;
  if (!JoinEnumerator::Connected(graph, full)) {
    return Status::InvalidArgument(
        "query graph is disconnected: add join conditions linking every "
        "source");
  }

  outcome.enumeration = JoinEnumerator::Enumerate(graph, options_.enumerate);
  if (!outcome.enumeration.feasible) {
    return Status::NoFeasiblePlan(
        "no feasible join order: some relation supports neither its "
        "pushed-down condition nor a bound value-list fetch");
  }
  outcome.estimated_cost = outcome.enumeration.best.cost;

  // Human-readable tree: "((a ind b) bind c)".
  const std::function<std::string(uint64_t)> render = [&](uint64_t set) {
    const SubsetPlan& node = outcome.enumeration.table.at(set);
    if (node.left == 0) {
      int r = 0;
      while (((set >> r) & 1u) == 0) ++r;
      return prepared.query->sources[r];
    }
    return "(" + render(node.left) +
           (node.method == EdgeMethod::kBind ? " bind " : " ind ") +
           render(node.right) + ")";
  };
  outcome.tree = render(outcome.enumeration.best.set);
  return outcome;
}

Result<FederationPlanOutcome> FederationProcessor::Plan(
    const FederatedQuery& query) {
  GC_ASSIGN_OR_RETURN(const Prepared prepared, PrepareQuery(query));
  return PlanPrepared(prepared, std::vector<bool>(entries_.size(), false));
}

Result<RowSet> FederationProcessor::ExecuteLeaf(const Prepared& prepared,
                                                const PlanPtr& plan,
                                                int relation,
                                                int* failed_relation) {
  CatalogEntry* entry = entries_[relation];
  ExecOptions exec_options = options_.exec;
  exec_options.breaker = entry->breaker();
  exec_options.latency = entry->latency_tracker();
  Executor exec(entry->source(), options_.pool, exec_options);
  Result<RowSet> rows = exec.Execute(*plan);
  FoldExec(&stats_.exec, exec.stats());
  stats_.true_cost += exec.stats().TrueCost(
      entry->handle()->description().k1(), entry->handle()->description().k2());
  for (TruncationRecord record : exec.truncation_records()) {
    stats_.truncations.push_back(std::move(record));
  }
  for (std::string dropped : exec.dropped_sub_queries()) {
    stats_.dropped_sub_queries.push_back(std::move(dropped));
  }
  if (!rows.ok() && IsRetryable(rows.status().code()) &&
      *failed_relation < 0) {
    *failed_relation = relation;
  }
  return rows;
}

FederationProcessor::Intermediate FederationProcessor::HashJoin(
    const Prepared& prepared, const Intermediate& left,
    const Intermediate& right) const {
  Intermediate out;
  out.set = left.set | right.set;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if ((out.set >> i) & 1u) {
      out.rels.push_back(static_cast<int>(i));
      out.rel_offset.push_back(out.width);
      out.width += prepared.rels[i].need_list.size();
    }
  }

  // Key slot pairs: every attr pair of every edge crossing the two sides.
  std::vector<std::pair<size_t, size_t>> key_slots;  // (left slot, right slot)
  for (const Prepared::Edge& edge : prepared.edges) {
    const bool a_left = (left.set >> edge.a) & 1u;
    const bool a_right = (right.set >> edge.a) & 1u;
    const bool b_left = (left.set >> edge.b) & 1u;
    const bool b_right = (right.set >> edge.b) & 1u;
    for (const auto& [a_attr, b_attr] : edge.keys) {
      if (a_left && b_right) {
        key_slots.emplace_back(left.SlotOf(prepared, edge.a, a_attr),
                               right.SlotOf(prepared, edge.b, b_attr));
      } else if (b_left && a_right) {
        key_slots.emplace_back(left.SlotOf(prepared, edge.b, b_attr),
                               right.SlotOf(prepared, edge.a, a_attr));
      }
    }
  }

  // Output rows interleave the two sides' segments in ascending relation
  // order. When the sides don't interleave (all left relations precede all
  // right ones), the output is a plain concatenation and — on the batch
  // data plane — the joined hash continues the left row's cached fold.
  const bool plain_concat =
      left.rels.back() < right.rels.front();
  const bool trusted_hash = plain_concat && options_.exec.batch_width > 0;

  const auto combine = [&](const Row& l, const Row& r) {
    std::vector<Value> values;
    values.reserve(out.width);
    if (plain_concat) {
      values = l.values();
      values.insert(values.end(), r.values().begin(), r.values().end());
      if (trusted_hash) {
        return Row(std::move(values), Row::ExtendHash(l.Hash(), r.values()));
      }
      return Row(std::move(values));
    }
    size_t li = 0, ri = 0;
    for (int rel : out.rels) {
      const bool from_left = (left.set >> rel) & 1u;
      const Intermediate& side = from_left ? left : right;
      size_t& cursor = from_left ? li : ri;
      const Row& row = from_left ? l : r;
      const size_t count = prepared.rels[rel].need_list.size();
      const size_t offset = side.rel_offset[cursor];
      for (size_t k = 0; k < count; ++k) {
        values.push_back(row.value(offset + k));
      }
      ++cursor;
    }
    return Row(std::move(values));
  };

  const auto fold_key = [&](const Row& row, bool is_left) {
    size_t h = Row::kEmptyHash;
    for (const auto& [ls, rs] : key_slots) {
      const Value& v = row.value(is_left ? ls : rs);
      h = Row::ExtendHash(h, &v, 1);
    }
    return h;
  };
  const auto keys_match = [&](const Row& l, const Row& r) {
    for (const auto& [ls, rs] : key_slots) {
      if (!(l.value(ls) == r.value(rs))) return false;
    }
    return true;
  };

  std::unordered_map<size_t, std::vector<const Row*>> index;
  for (const Row& row : right.rows.rows()) {
    index[fold_key(row, /*is_left=*/false)].push_back(&row);
  }

  out.rows = RowSet(RowLayout(AttributeSet::AllOf(out.width), out.width));
  for (const Row& left_row : left.rows.rows()) {
    const auto it = index.find(fold_key(left_row, /*is_left=*/true));
    if (it == index.end()) continue;
    for (const Row* right_row : it->second) {
      if (!keys_match(left_row, *right_row)) continue;
      out.rows.Insert(combine(left_row, *right_row));
    }
  }
  return out;
}

Result<FederationProcessor::Intermediate> FederationProcessor::ExecuteNode(
    const Prepared& prepared, const FederationPlanOutcome& outcome,
    uint64_t set, int* failed_relation) {
  const SubsetPlan& node = outcome.enumeration.table.at(set);

  if (node.left == 0) {  // leaf: one relation, fetched independently
    int r = 0;
    while (((set >> r) & 1u) == 0) ++r;
    const PlanPtr& plan = outcome.leaf_plans[r];
    if (plan == nullptr) {
      return Status::Internal("join tree chose an unplanned leaf fetch");
    }
    GC_ASSIGN_OR_RETURN(RowSet rows,
                        ExecuteLeaf(prepared, plan, r, failed_relation));
    Intermediate leaf;
    leaf.set = set;
    leaf.rels = {r};
    leaf.rel_offset = {0};
    leaf.width = prepared.rels[r].need_list.size();
    leaf.rows = std::move(rows);
    return leaf;
  }

  GC_ASSIGN_OR_RETURN(
      const Intermediate left,
      ExecuteNode(prepared, outcome, node.left, failed_relation));

  if (node.method == EdgeMethod::kIndependent) {
    GC_ASSIGN_OR_RETURN(
        const Intermediate right,
        ExecuteNode(prepared, outcome, node.right, failed_relation));
    return HashJoin(prepared, left, right);
  }

  // Bind join: fetch the bound relation as batched value-list queries
  // driven by the finished left subtree's distinct key values.
  const int r = node.bind_relation;
  const Prepared::Edge& edge = prepared.edges[node.bind_edge];
  int drive_rel, drive_attr, bound_attr;
  if (edge.b == r) {
    drive_rel = edge.a;
    drive_attr = edge.keys[0].first;
    bound_attr = edge.keys[0].second;
  } else {
    drive_rel = edge.b;
    drive_attr = edge.keys[0].second;
    bound_attr = edge.keys[0].first;
  }
  const int drive_slot = left.SlotOf(prepared, drive_rel, drive_attr);

  std::vector<Value> distinct;
  {
    std::unordered_set<Value, ValueHash> seen;
    for (const Row& row : left.rows.rows()) {
      const Value& v = row.value(static_cast<size_t>(drive_slot));
      if (v.is_null()) continue;
      if (seen.insert(v).second) distinct.push_back(v);
    }
  }

  CatalogEntry* entry = entries_[r];
  const Prepared::Rel& rel = prepared.rels[r];
  const std::string& key_attr = entry->schema().attribute(bound_attr).name;
  ExecOptions exec_options = options_.exec;
  exec_options.breaker = entry->breaker();
  exec_options.latency = entry->latency_tracker();
  Executor exec(entry->source(), options_.pool, exec_options);
  RowSet acc(RowLayout(rel.needs, entry->schema().num_attributes()));
  Result<RowSet> bound = [&]() -> Result<RowSet> {
    const size_t batch_size = std::max<size_t>(options_.bind_batch_size, 1);
    for (size_t start = 0; start < distinct.size(); start += batch_size) {
      const size_t end = std::min(distinct.size(), start + batch_size);
      const std::vector<Value> batch(distinct.begin() + start,
                                     distinct.begin() + end);
      const ConditionPtr batch_cond =
          BindBatchCondition(rel.pushdown, key_attr, batch);
      GC_ASSIGN_OR_RETURN(PlanPtr batch_plan,
                          PlanLeaf(entry, batch_cond, rel.needs));
      GC_ASSIGN_OR_RETURN(RowSet batch_rows, exec.Execute(*batch_plan));
      if (options_.exec.batch_width > 0) {
        acc.MergeFrom(std::move(batch_rows));
      } else {
        acc = RowSet::UnionOf(acc, batch_rows);
      }
      ++stats_.bind_batches;
    }
    return std::move(acc);
  }();
  FoldExec(&stats_.exec, exec.stats());
  stats_.true_cost += exec.stats().TrueCost(
      entry->handle()->description().k1(), entry->handle()->description().k2());
  for (TruncationRecord record : exec.truncation_records()) {
    stats_.truncations.push_back(std::move(record));
  }
  for (std::string dropped : exec.dropped_sub_queries()) {
    stats_.dropped_sub_queries.push_back(std::move(dropped));
  }
  if (!bound.ok()) {
    if (IsRetryable(bound.status().code()) && *failed_relation < 0) {
      *failed_relation = r;
    }
    return bound.status();
  }

  Intermediate right;
  right.set = uint64_t{1} << r;
  right.rels = {r};
  right.rel_offset = {0};
  right.width = rel.need_list.size();
  right.rows = std::move(bound).value();
  return HashJoin(prepared, left, right);
}

Result<RowSet> FederationProcessor::Execute(const FederatedQuery& query) {
  stats_ = FederationExecStats();
  GC_ASSIGN_OR_RETURN(const Prepared prepared, PrepareQuery(query));
  const size_t n = entries_.size();
  const uint64_t full = (uint64_t{1} << n) - 1;

  std::vector<bool> avoid(n, false);
  Status last_error = Status::OK();
  for (size_t round = 0;; ++round) {
    Result<FederationPlanOutcome> outcome = PlanPrepared(prepared, avoid);
    if (!outcome.ok()) {
      // A later round that cannot re-plan reports the execution failure
      // that triggered it, not the planner's.
      return round == 0 ? outcome.status() : last_error;
    }
    stats_.plans_enumerated += outcome->enumeration.stats.plans_considered;
    stats_.dp_subsets += outcome->enumeration.stats.subsets_expanded;
    stats_.used_greedy |= outcome->enumeration.stats.used_greedy;

    int failed_relation = -1;
    Result<Intermediate> root =
        ExecuteNode(prepared, *outcome, full, &failed_relation);
    if (!root.ok()) {
      last_error = root.status();
      if (round < options_.max_replans && failed_relation >= 0 &&
          !avoid[failed_relation] && IsRetryable(last_error.code())) {
        avoid[failed_relation] = true;
        ++stats_.replans;
        continue;
      }
      return last_error;
    }

    // Count the chosen tree's edge methods (of the round that answered).
    stats_.bind_edges = 0;
    stats_.independent_edges = 0;
    const std::function<void(uint64_t)> count = [&](uint64_t set) {
      const SubsetPlan& node = outcome->enumeration.table.at(set);
      if (node.left == 0) return;
      if (node.method == EdgeMethod::kBind) {
        ++stats_.bind_edges;
      } else {
        ++stats_.independent_edges;
      }
      count(node.left);
      count(node.right);
    };
    count(full);

    // Root postprocessing: residual over the joined schema, then the
    // SELECT projection.
    const Schema& joined_schema = prepared.joined_schema;
    const RowLayout joined_layout(joined_schema.AllAttributes(),
                                  joined_schema.num_attributes());
    AttributeSet select_attrs;
    if (query.select.empty()) {
      select_attrs = joined_schema.AllAttributes();
    } else {
      GC_ASSIGN_OR_RETURN(select_attrs, joined_schema.MakeSet(query.select));
    }
    const RowLayout out_layout(select_attrs, joined_schema.num_attributes());
    RowSet output(out_layout);
    for (const Row& row : root->rows.rows()) {
      if (!outcome->residual->is_true()) {
        GC_ASSIGN_OR_RETURN(const bool keep,
                            EvalCondition(*outcome->residual, row,
                                          joined_layout, joined_schema));
        if (!keep) continue;
      }
      ++stats_.joined_rows;
      output.Insert(joined_layout.Project(row, out_layout));
    }
    return output;
  }
}

}  // namespace gencompact
