#ifndef GENCOMPACT_MEDIATOR_FEDERATION_H_
#define GENCOMPACT_MEDIATOR_FEDERATION_H_

#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "mediator/catalog.h"
#include "mediator/join.h"
#include "plan/plan.h"
#include "planner/join_enum.h"

namespace gencompact {

/// An N-source conjunctive query over a query graph: relations (each a
/// capability-limited Internet source), equi-join edges from the ON
/// clauses, and a condition over qualified attributes that splits into
/// per-relation pushdowns plus a multi-relation residual. Generalizes
/// JoinQuery from exactly two sources to arbitrary connected graphs.
struct FederatedQuery {
  std::vector<std::string> sources;  ///< FROM order; ≥ 2, distinct
  std::vector<JoinKey> keys;         ///< qualified "src.attr" pairs
  ConditionPtr condition;            ///< qualified; may be null/True
  std::vector<std::string> select;   ///< qualified; empty = all attributes
};

struct FederationOptions {
  /// Distinct driving-side join values per bound value-list batch.
  size_t bind_batch_size = 8;
  /// Consider bind-join edges at all.
  bool enable_bind = true;
  /// Join-order search mode and DP size threshold.
  JoinEnumerator::Options enumerate;
  /// Force the per-edge method on two-relation queries (parity tests
  /// against JoinProcessor::force_method): kBind marks relation 1's
  /// independent fetch infeasible so the enumerator must bind it;
  /// kIndependent strips every bind edge.
  std::optional<EdgeMethod> force_method;
  /// On a retryable leaf failure, mark that relation's independent fetch
  /// infeasible and re-enumerate — the avoid-set analogue at the join-order
  /// level: the alternate tree reaches the failed relation through a bind
  /// edge (or not at all). 0 disables.
  size_t max_replans = 0;
  /// Per-relation executor discipline (retry/clock/hedge/batch_width/
  /// degrade/partial_pages); breaker and latency tracker are overridden per
  /// relation from its catalog entry.
  ExecOptions exec;
  /// Worker pool for the per-relation executors; may be null.
  ThreadPool* pool = nullptr;
};

struct FederationPlanOutcome {
  /// The derived cost-level graph (the oracle tests enumerate it too).
  JoinGraph graph;
  /// PlanTable + best tree + enumeration counters.
  JoinEnumerator::Result enumeration;
  /// Multi-relation conjuncts, evaluated at the join root.
  ConditionPtr residual;
  /// Validated per-relation independent plans (null = infeasible unbound —
  /// the relation must be reached via a bind edge).
  std::vector<PlanPtr> leaf_plans;
  double estimated_cost = 0.0;
  /// Rendering of the chosen tree, e.g. "((cars ind dealers) bind reviews)".
  std::string tree;
};

struct FederationExecStats {
  /// Aggregated over every per-relation executor pass.
  ExecStats exec;
  size_t bind_batches = 0;
  /// Rows surviving the residual at the join root.
  size_t joined_rows = 0;
  // Enumeration counters (the mediator's `join` stats block).
  size_t plans_enumerated = 0;
  size_t dp_subsets = 0;
  size_t bind_edges = 0;
  size_t independent_edges = 0;
  bool used_greedy = false;
  size_t replans = 0;  ///< alternate join orders adopted after leaf failures
  /// Equation-1 cost with actual row counts, summed per relation.
  double true_cost = 0.0;
  /// Completeness composition: markers from every relation's executor.
  std::vector<TruncationRecord> truncations;
  std::vector<std::string> dropped_sub_queries;
};

/// Plans and executes N-source federated queries: capability-sensitive
/// pushdown per relation (GenCompact per leaf), DP join-order enumeration
/// over the query graph with bind-join vs independent-fetch per edge, and
/// execution of the chosen tree through per-relation Executors so retries,
/// breakers, hedging suppression, paging loops, and truncation markers all
/// compose. Entries must align with FederatedQuery::sources by index.
class FederationProcessor {
 public:
  FederationProcessor(std::vector<CatalogEntry*> entries,
                      FederationOptions options = {});

  /// Full joined schema: every relation's attributes, dot-qualified, in
  /// FROM order.
  Result<Schema> OutputSchema(const FederatedQuery& query) const;

  /// Splits the condition, plans every leaf, derives the cost graph, and
  /// enumerates join orders.
  Result<FederationPlanOutcome> Plan(const FederatedQuery& query);

  /// Plans + executes; returns joined rows projected to `query.select`.
  Result<RowSet> Execute(const FederatedQuery& query);

  const FederationExecStats& stats() const { return stats_; }

 private:
  struct Prepared;
  struct Intermediate;

  Result<Prepared> PrepareQuery(const FederatedQuery& query) const;
  Result<FederationPlanOutcome> PlanPrepared(const Prepared& prepared,
                                             const std::vector<bool>& avoid);
  Result<Intermediate> ExecuteNode(const Prepared& prepared,
                                   const FederationPlanOutcome& outcome,
                                   uint64_t set, int* failed_relation);
  Result<RowSet> ExecuteLeaf(const Prepared& prepared, const PlanPtr& plan,
                             int relation, int* failed_relation);
  Intermediate HashJoin(const Prepared& prepared, const Intermediate& left,
                        const Intermediate& right) const;

  std::vector<CatalogEntry*> entries_;
  FederationOptions options_;
  FederationExecStats stats_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_MEDIATOR_FEDERATION_H_
