#include "mediator/catalog.h"

namespace gencompact {

CatalogEntry::CatalogEntry(SourceDescription description,
                           std::unique_ptr<Table> table, uint32_t source_id,
                           bool apply_commutativity_closure)
    : table_(std::move(table)),
      handle_(std::move(description), table_.get(), apply_commutativity_closure),
      source_(table_.get(), &handle_.description()),
      source_id_(source_id) {}

Status Catalog::Register(SourceDescription description,
                         std::unique_ptr<Table> table,
                         bool apply_commutativity_closure) {
  const std::string name = description.source_name();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("source '" + name + "' already registered");
  }
  entries_.emplace(name, std::make_unique<CatalogEntry>(
                             std::move(description), std::move(table),
                             next_source_id_++, apply_commutativity_closure));
  return Status::OK();
}

Result<CatalogEntry*> Catalog::Find(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown source: " + name);
  }
  return it->second.get();
}

}  // namespace gencompact
