#include "mediator/catalog.h"

namespace gencompact {

CatalogEntry::CatalogEntry(SourceDescription description,
                           std::unique_ptr<Table> table, uint32_t source_id,
                           bool apply_commutativity_closure)
    : table_(std::move(table)),
      handle_(std::move(description), table_.get(), apply_commutativity_closure),
      source_(table_.get(), &handle_.description()),
      source_id_(source_id) {}

double CatalogEntry::RefreshCostPenalty() {
  if (!penalty_enabled_) return 1.0;
  double multiplier = 1.0;
  if (breaker_ != nullptr) {
    switch (breaker_->EffectiveState()) {
      case CircuitBreaker::State::kOpen:
        multiplier *= penalty_options_.open_multiplier;
        break;
      case CircuitBreaker::State::kHalfOpen:
        multiplier *= penalty_options_.half_open_multiplier;
        break;
      case CircuitBreaker::State::kClosed:
        break;
    }
  }
  if (latency_ != nullptr && penalty_options_.slow_multiplier > 1.0 &&
      penalty_options_.slow_latency_threshold.count() > 0 &&
      latency_->count() >= penalty_options_.min_latency_samples &&
      latency_->Quantile(0.99) > penalty_options_.slow_latency_threshold) {
    multiplier *= penalty_options_.slow_multiplier;
  }
  penalty_.set_multiplier(multiplier);
  return multiplier;
}

Status Catalog::Register(SourceDescription description,
                         std::unique_ptr<Table> table,
                         bool apply_commutativity_closure) {
  const std::string name = description.source_name();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("source '" + name + "' already registered");
  }
  entries_.emplace(name, std::make_unique<CatalogEntry>(
                             std::move(description), std::move(table),
                             next_source_id_++, apply_commutativity_closure));
  return Status::OK();
}

namespace {

bool SchemasEqual(const Schema& a, const Schema& b) {
  if (a.num_attributes() != b.num_attributes()) return false;
  for (size_t i = 0; i < a.num_attributes(); ++i) {
    const AttributeDef& da = a.attribute(static_cast<int>(i));
    const AttributeDef& db = b.attribute(static_cast<int>(i));
    if (da.name != db.name || da.type != db.type) return false;
  }
  return true;
}

}  // namespace

std::vector<CatalogEntry*> Catalog::SchemaCompatibleAlternates(
    const CatalogEntry& entry) const {
  std::vector<CatalogEntry*> alternates;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, candidate] : entries_) {
    if (candidate.get() == &entry) continue;
    if (SchemasEqual(candidate->schema(), entry.schema())) {
      alternates.push_back(candidate.get());
    }
  }
  return alternates;
}

Result<CatalogEntry*> Catalog::Find(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown source: " + name);
  }
  return it->second.get();
}

}  // namespace gencompact
