#include "mediator/catalog.h"

namespace gencompact {

CatalogEntry::CatalogEntry(SourceDescription description,
                           std::unique_ptr<Table> table, uint32_t source_id,
                           bool apply_commutativity_closure)
    : table_(std::move(table)),
      handle_(std::make_unique<SourceHandle>(std::move(description),
                                             table_.get(),
                                             apply_commutativity_closure)),
      source_(std::make_unique<Source>(table_.get(), &handle_->description())),
      source_id_(source_id),
      apply_commutativity_closure_(apply_commutativity_closure) {}

void CatalogEntry::EnableCheckMemo(CheckMemo* memo) {
  check_memo_ = memo;
  if (check_memo_ == nullptr) return;
  // Both Checkers — the planning handle's and the enforcement wrapper's —
  // answer the same Check(C, R) against the same closed description, so
  // they share one keyed slice of the memo.
  handle_->checker()->EnableSharedMemo(check_memo_, source_id_,
                                       description_epoch_);
  source_->checker()->EnableSharedMemo(check_memo_, source_id_,
                                       description_epoch_);
}

Status CatalogEntry::ReloadDescription(SourceDescription description) {
  if (description.source_name() != name()) {
    return Status::InvalidArgument(
        "reload of '" + name() + "' given a description for '" +
        description.source_name() + "'");
  }
  const Schema& incoming = description.schema();
  const Schema& existing = table_->schema();
  if (incoming.num_attributes() != existing.num_attributes()) {
    return Status::InvalidArgument(
        "reloaded description schema does not match the table of '" + name() +
        "'");
  }
  for (size_t i = 0; i < incoming.num_attributes(); ++i) {
    const AttributeDef& a = incoming.attribute(static_cast<int>(i));
    const AttributeDef& b = existing.attribute(static_cast<int>(i));
    if (a.name != b.name || a.type != b.type) {
      return Status::InvalidArgument(
          "reloaded description schema does not match the table of '" +
          name() + "'");
    }
  }
  ++description_epoch_;
  handle_ = std::make_unique<SourceHandle>(std::move(description), table_.get(),
                                           apply_commutativity_closure_);
  source_ = std::make_unique<Source>(table_.get(), &handle_->description());
  source_->set_batch_width(batch_width_);
  if (penalty_enabled_) {
    handle_->mutable_cost_model()->set_health_penalty(&penalty_);
  }
  if (check_memo_ != nullptr) {
    // Old-epoch entries can never match again; drop them now so they stop
    // holding capacity, then wire the fresh Checkers under the new epoch.
    check_memo_->InvalidateSource(source_id_);
    EnableCheckMemo(check_memo_);
  }
  return Status::OK();
}

double CatalogEntry::RefreshCostPenalty() {
  if (!penalty_enabled_) return 1.0;
  double multiplier = 1.0;
  if (breaker_ != nullptr) {
    switch (breaker_->EffectiveState()) {
      case CircuitBreaker::State::kOpen:
        multiplier *= penalty_options_.open_multiplier;
        break;
      case CircuitBreaker::State::kHalfOpen:
        multiplier *= penalty_options_.half_open_multiplier;
        break;
      case CircuitBreaker::State::kClosed:
        break;
    }
  }
  if (latency_ != nullptr && penalty_options_.slow_multiplier > 1.0 &&
      penalty_options_.slow_latency_threshold.count() > 0 &&
      latency_->count() >= penalty_options_.min_latency_samples &&
      latency_->Quantile(0.99) > penalty_options_.slow_latency_threshold) {
    multiplier *= penalty_options_.slow_multiplier;
  }
  penalty_.set_multiplier(multiplier);
  return multiplier;
}

Status Catalog::Register(SourceDescription description,
                         std::unique_ptr<Table> table,
                         bool apply_commutativity_closure) {
  const std::string name = description.source_name();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (entries_.count(name) > 0) {
    return Status::InvalidArgument("source '" + name + "' already registered");
  }
  entries_.emplace(name, std::make_unique<CatalogEntry>(
                             std::move(description), std::move(table),
                             next_source_id_++, apply_commutativity_closure));
  return Status::OK();
}

Result<CatalogEntry*> Catalog::Reload(SourceDescription description) {
  const std::string name = description.source_name();
  std::unique_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown source: " + name);
  }
  GC_RETURN_IF_ERROR(it->second->ReloadDescription(std::move(description)));
  return it->second.get();
}

namespace {

bool SchemasEqual(const Schema& a, const Schema& b) {
  if (a.num_attributes() != b.num_attributes()) return false;
  for (size_t i = 0; i < a.num_attributes(); ++i) {
    const AttributeDef& da = a.attribute(static_cast<int>(i));
    const AttributeDef& db = b.attribute(static_cast<int>(i));
    if (da.name != db.name || da.type != db.type) return false;
  }
  return true;
}

}  // namespace

std::vector<CatalogEntry*> Catalog::SchemaCompatibleAlternates(
    const CatalogEntry& entry) const {
  std::vector<CatalogEntry*> alternates;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, candidate] : entries_) {
    if (candidate.get() == &entry) continue;
    if (SchemasEqual(candidate->schema(), entry.schema())) {
      alternates.push_back(candidate.get());
    }
  }
  return alternates;
}

Result<CatalogEntry*> Catalog::Find(const std::string& name) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown source: " + name);
  }
  return it->second.get();
}

}  // namespace gencompact
